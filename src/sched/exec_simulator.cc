#include "sched/exec_simulator.h"

#include <algorithm>
#include <set>
#include <limits>
#include <cmath>

namespace dfim {

Result<ExecResult> ExecSimulator::Run(const Dag& dag, const Schedule& plan,
                                      const std::vector<SimOpCost>& costs,
                                      std::vector<Container*>* containers) {
  if (costs.size() != dag.num_ops()) {
    return Status::InvalidArgument("costs size != number of ops");
  }
  Rng rng(opts_.seed);
  auto perturb = [&rng](double v, double err) {
    if (err <= 0) return v;
    return v * rng.Uniform(1.0 - err, 1.0 + err);
  };

  // Draw per-op actual values once, in op-id order (deterministic).
  std::vector<Seconds> actual_cpu(dag.num_ops());
  std::vector<MegaBytes> actual_input(dag.num_ops());
  for (size_t i = 0; i < dag.num_ops(); ++i) {
    actual_cpu[i] = perturb(costs[i].cpu_time, opts_.time_error);
    actual_input[i] = perturb(costs[i].input_mb, opts_.data_error);
  }
  std::vector<MegaBytes> actual_flow(dag.num_flows());
  for (size_t i = 0; i < dag.num_flows(); ++i) {
    actual_flow[i] = perturb(dag.flows()[i].size, opts_.data_error);
  }

  auto sorted = plan.SortedByContainer();
  // Per-container planned sequences (already sorted by start within each).
  int nc = plan.num_containers();
  std::vector<std::vector<const Assignment*>> seq(static_cast<size_t>(nc));
  for (const auto& a : sorted) {
    seq[static_cast<size_t>(a.container)].push_back(&a);
  }

  // Container placement per op (for flow transfer decisions).
  std::vector<int> placed(dag.num_ops(), -1);
  for (const auto& a : sorted) placed[static_cast<size_t>(a.op_id)] = a.container;

  auto cache_of = [containers](int c) -> LruCache* {
    if (containers == nullptr) return nullptr;
    auto i = static_cast<size_t>(c);
    if (i >= containers->size() || (*containers)[i] == nullptr) return nullptr;
    return &(*containers)[i]->cache();
  };

  ExecResult result;

  // ---- Phase 1: dataflow operators. --------------------------------------
  // Global planned-start order is a topological order for schedules built by
  // our schedulers (children always start after parents end in the plan).
  std::vector<const Assignment*> df_plan;
  for (const auto& a : sorted) {
    if (!a.optional) df_plan.push_back(&a);
  }
  std::stable_sort(df_plan.begin(), df_plan.end(),
                   [](const Assignment* x, const Assignment* y) {
                     if (x->start != y->start) return x->start < y->start;
                     return x->op_id < y->op_id;
                   });
  std::vector<Seconds> finish(dag.num_ops(), -1.0);
  std::vector<Seconds> df_cursor(static_cast<size_t>(nc), 0);
  std::vector<Seconds> df_start(dag.num_ops(), -1.0);
  // Producer outputs staged per container (transfer paid once, then local).
  std::vector<std::set<int>> delivered(static_cast<size_t>(nc));
  for (const Assignment* a : df_plan) {
    auto id = static_cast<size_t>(a->op_id);
    Seconds est = df_cursor[static_cast<size_t>(a->container)];
    // Cross-container flows serialize on the consumer's NIC: they extend
    // the op's busy time instead of merely delaying its start.
    Seconds flow_transfer = 0;
    for (int fid : dag.in_flows(a->op_id)) {
      const Flow& f = dag.flows()[static_cast<size_t>(fid)];
      Seconds pf = finish[static_cast<size_t>(f.from)];
      if (pf < 0) {
        return Status::Internal(
            "plan is not dependency-ordered: parent of op " +
            std::to_string(a->op_id) + " not finished");
      }
      est = std::max(est, pf);
      if (placed[static_cast<size_t>(f.from)] != a->container &&
          delivered[static_cast<size_t>(a->container)].insert(f.from).second) {
        flow_transfer +=
            actual_flow[static_cast<size_t>(fid)] / opts_.net_mb_per_sec;
      }
    }
    // Input transfer from the storage service, absorbed by a warm cache.
    Seconds transfer = 0;
    if (actual_input[id] > 0) {
      LruCache* cache = cache_of(a->container);
      bool hit = cache != nullptr && !costs[id].cache_key.empty() &&
                 cache->Touch(costs[id].cache_key);
      if (!hit) {
        transfer = actual_input[id] / opts_.net_mb_per_sec;
        if (cache != nullptr && !costs[id].cache_key.empty()) {
          cache->Put(costs[id].cache_key, actual_input[id]);
        }
      }
    }
    Seconds start = est;
    Seconds end = start + flow_transfer + transfer + actual_cpu[id];
    finish[id] = end;
    df_start[id] = start;
    df_cursor[static_cast<size_t>(a->container)] = end;
    result.makespan = std::max(result.makespan, end);
    ++result.executed_ops;
    Assignment actual = *a;
    actual.start = start;
    actual.end = end;
    result.actual.Add(actual);
  }

  // ---- Phase 2: build-index operators, preempted as needed. --------------
  // A container's lease covers the quanta needed by its planned assignments
  // and by the realized dataflow ops (which must run regardless). Build ops
  // may run up to the lease end — interior quantum boundaries are already
  // paid for — and are stopped there (Fig. 2c: B2) or when a dataflow op
  // arrives (Fig. 2c: A1).
  int64_t leased_total = 0;
  Seconds busy_total = 0;
  for (int c = 0; c < nc; ++c) {
    const auto& items = seq[static_cast<size_t>(c)];
    Seconds planned_end = 0;
    for (const Assignment* a : items) {
      planned_end = std::max(planned_end, a->end);
    }
    Seconds actual_df_end = df_cursor[static_cast<size_t>(c)];
    int64_t leased_q = std::max<int64_t>(
        1, QuantaCeil(std::max(planned_end, actual_df_end), opts_.quantum));
    Seconds lease_end = static_cast<double>(leased_q) * opts_.quantum;
    leased_total += leased_q;
    // Next dataflow op's actual start, per position in the planned sequence.
    std::vector<Seconds> next_df(items.size() + 1,
                                 std::numeric_limits<double>::infinity());
    for (size_t i = items.size(); i-- > 0;) {
      next_df[i] = next_df[i + 1];
      if (!items[i]->optional) {
        next_df[i] = df_start[static_cast<size_t>(items[i]->op_id)];
      }
    }
    Seconds cursor = 0;
    for (size_t i = 0; i < items.size(); ++i) {
      const Assignment* a = items[i];
      auto id = static_cast<size_t>(a->op_id);
      if (!a->optional) {
        cursor = std::max(cursor, finish[id]);
        continue;
      }
      Seconds start = cursor;
      Seconds dur = actual_cpu[id];  // build time includes its IO
      Seconds kill_at = std::max(std::min(next_df[i + 1], lease_end), start);
      Seconds end;
      ++result.executed_ops;
      if (start + dur <= kill_at + 1e-9) {
        end = start + dur;
        result.builds.push_back(BuildCompletion{
            dag.op(a->op_id).index_id, dag.op(a->op_id).index_partition, end});
      } else {
        end = kill_at;
        ++result.killed_builds;
        result.kills.push_back(BuildKill{dag.op(a->op_id).index_id,
                                         dag.op(a->op_id).index_partition,
                                         end - start});
      }
      cursor = end;
      Assignment actual = *a;
      actual.start = start;
      actual.end = end;
      result.actual.Add(actual);
    }
    // Busy time on this container (assignments never overlap).
    for (const auto& a : result.actual.ContainerTimeline(c)) {
      busy_total += a.duration();
    }
  }

  result.leased_quanta = leased_total;
  result.total_idle =
      static_cast<double>(leased_total) * opts_.quantum - busy_total;
  return result;
}

}  // namespace dfim
