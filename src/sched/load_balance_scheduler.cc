#include "sched/load_balance_scheduler.h"

#include <algorithm>

namespace dfim {

int LoadBalanceScheduler::AutoContainerCount(const Dag& dag,
                                             int max_containers) {
  auto order = dag.TopologicalOrder();
  if (!order.ok() || order->empty()) return 1;
  // Depth = longest path (in hops) from an entry op; width = the most
  // mandatory ops sharing a depth.
  std::vector<int> depth(dag.num_ops(), 0);
  int max_depth = 0;
  for (int id : *order) {
    for (int p : dag.parents(id)) {
      depth[static_cast<size_t>(id)] =
          std::max(depth[static_cast<size_t>(id)],
                   depth[static_cast<size_t>(p)] + 1);
    }
    max_depth = std::max(max_depth, depth[static_cast<size_t>(id)]);
  }
  std::vector<int> width(static_cast<size_t>(max_depth) + 1, 0);
  int best = 1;
  for (const auto& op : dag.ops()) {
    if (op.optional) continue;
    int w = ++width[static_cast<size_t>(depth[static_cast<size_t>(op.id)])];
    best = std::max(best, w);
  }
  return std::max(1, std::min(best, max_containers));
}

Result<Schedule> LoadBalanceScheduler::ScheduleDag(
    const Dag& dag, const std::vector<Seconds>& durations,
    int num_containers) const {
  if (durations.size() != dag.num_ops()) {
    return Status::InvalidArgument("durations size != number of ops");
  }
  if (num_containers == kAutoContainers) {
    num_containers = AutoContainerCount(dag, opts_.max_containers);
  }
  if (num_containers < 1) {
    return Status::InvalidArgument("need at least one container");
  }
  num_containers = std::min(num_containers, opts_.max_containers);
  DFIM_ASSIGN_OR_RETURN(std::vector<int> order, dag.TopologicalOrder());

  auto nc = static_cast<size_t>(num_containers);
  // Per-container timelines; appends are monotone, so Timeline::last_end()
  // is the container's availability point.
  std::vector<Timeline> tls(nc);
  std::vector<Seconds> load(nc, 0);  // accumulated work per container
  std::vector<Seconds> finish(dag.num_ops(), 0);
  std::vector<int> placed(dag.num_ops(), 0);
  // Producer outputs staged per container (transfer paid once, then local;
  // sorted vectors, same representation as PartialState::delivered).
  std::vector<std::vector<int>> delivered(nc);

  Schedule schedule;
  for (int id : order) {
    const Operator& op = dag.op(id);
    if (op.optional) continue;  // the baseline does not build indexes
    // Load balance: pick the least-loaded container, ignoring data
    // placement and dependency readiness.
    size_t c = 0;
    for (size_t i = 1; i < nc; ++i) {
      if (load[i] < load[c]) c = i;
    }
    Seconds est = tls[c].last_end();
    Seconds transfer_in = 0;
    for (int fid : dag.in_flows(id)) {
      const Flow& f = dag.flows()[static_cast<size_t>(fid)];
      est = std::max(est, finish[static_cast<size_t>(f.from)]);
      if (placed[static_cast<size_t>(f.from)] != static_cast<int>(c)) {
        auto& dl = delivered[c];
        auto it = std::lower_bound(dl.begin(), dl.end(), f.from);
        if (it == dl.end() || *it != f.from) {
          // Cross-container flows serialize on the consumer's NIC and are
          // staged once per container.
          dl.insert(it, f.from);
          transfer_in += f.size / opts_.net_mb_per_sec;
        }
      }
    }
    Seconds dur = durations[static_cast<size_t>(id)] + transfer_in;
    Assignment a;
    a.op_id = id;
    a.container = static_cast<int>(c);
    a.start = est;
    a.end = est + dur;
    a.optional = false;
    schedule.Add(a);
    tls[c].Insert(a);
    load[c] += dur;
    finish[static_cast<size_t>(id)] = a.end;
    placed[static_cast<size_t>(id)] = static_cast<int>(c);
  }
  return schedule;
}

}  // namespace dfim
