#include "sched/schedule.h"

#include <algorithm>
#include <cmath>

namespace dfim {

void Schedule::Add(Assignment a) { assignments_.push_back(a); }

int Schedule::num_containers() const {
  int max_c = -1;
  for (const auto& a : assignments_) max_c = std::max(max_c, a.container);
  return max_c + 1;
}

Seconds Schedule::makespan() const {
  Seconds end = 0;
  for (const auto& a : assignments_) {
    if (!a.optional) end = std::max(end, a.end);
  }
  return end;
}

Seconds Schedule::TotalSpan() const {
  Seconds end = 0;
  for (const auto& a : assignments_) end = std::max(end, a.end);
  return end;
}

int64_t Schedule::LeasedQuanta(Seconds quantum) const {
  int nc = num_containers();
  std::vector<Seconds> last(static_cast<size_t>(nc), 0);
  for (const auto& a : assignments_) {
    last[static_cast<size_t>(a.container)] =
        std::max(last[static_cast<size_t>(a.container)], a.end);
  }
  int64_t total = 0;
  for (Seconds t : last) {
    // A used container is charged at least one quantum.
    total += std::max<int64_t>(1, QuantaCeil(t, quantum));
  }
  return total;
}

Timeline Schedule::BuildTimeline(int container) const {
  Timeline tl;
  for (const auto& a : assignments_) {
    if (a.container == container) tl.Insert(a);
  }
  return tl;
}

std::vector<Timeline> Schedule::BuildTimelines() const {
  std::vector<Timeline> tls(static_cast<size_t>(num_containers()));
  for (const auto& a : assignments_) {
    tls[static_cast<size_t>(a.container)].Insert(a);
  }
  return tls;
}

std::vector<Assignment> Schedule::ContainerTimeline(int container) const {
  Timeline tl = BuildTimeline(container);
  std::vector<Assignment> out;
  out.reserve(tl.size());
  for (size_t i = 0; i < tl.size(); ++i) out.push_back(tl.At(i, container));
  return out;
}

std::vector<Assignment> Schedule::SortedByContainer() const {
  std::vector<Assignment> out = assignments_;
  std::sort(out.begin(), out.end(), [](const Assignment& x, const Assignment& y) {
    if (x.container != y.container) return x.container < y.container;
    if (x.start != y.start) return x.start < y.start;
    return x.op_id < y.op_id;
  });
  return out;
}

std::vector<IdleSlot> Schedule::FindIdleSlots(Seconds quantum) const {
  std::vector<IdleSlot> slots;
  std::vector<Timeline> tls = BuildTimelines();
  for (size_t c = 0; c < tls.size(); ++c) {
    tls[c].AppendIdleSlots(static_cast<int>(c), quantum, &slots);
  }
  return slots;
}

Seconds Schedule::TotalIdle(Seconds quantum) const {
  Seconds total = 0;
  for (const auto& s : FindIdleSlots(quantum)) total += s.size();
  return total;
}

bool Schedule::CheckNoOverlap() const {
  for (const Timeline& tl : BuildTimelines()) {
    if (!tl.NoOverlap()) return false;
  }
  return true;
}

std::string Schedule::ToAscii(Seconds quantum, int cols) const {
  int nc = num_containers();
  Seconds span = 0;
  for (const auto& a : assignments_) span = std::max(span, a.end);
  // Round the horizon up to a whole quantum for readability.
  span = static_cast<double>(std::max<int64_t>(1, QuantaCeil(span, quantum))) *
         quantum;
  std::string out;
  double per_col = span / cols;
  for (int c = 0; c < nc; ++c) {
    std::string row(static_cast<size_t>(cols), '.');
    for (const auto& a : ContainerTimeline(c)) {
      auto lo = static_cast<int>(a.start / per_col);
      auto hi = static_cast<int>(std::ceil(a.end / per_col));
      for (int x = lo; x < hi && x < cols; ++x) {
        row[static_cast<size_t>(x)] = a.optional ? '+' : '#';
      }
    }
    out += "c";
    out += std::to_string(c);
    out += (c < 10 ? "  |" : " |");
    out += row;
    out += "|\n";
  }
  // Quantum ruler.
  std::string ruler(static_cast<size_t>(cols), ' ');
  for (Seconds q = quantum; q < span + 1e-9; q += quantum) {
    auto x = static_cast<size_t>(q / per_col);
    if (x > 0 && x <= static_cast<size_t>(cols)) ruler[x - 1] = '|';
  }
  out += "     " + ruler + "\n";
  return out;
}

}  // namespace dfim
