#include "common/logging.h"

#include <cstdio>

namespace dfim {
namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::threshold() { return g_threshold; }

void Logger::set_threshold(LogLevel level) { g_threshold = level; }

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < g_threshold || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace dfim
