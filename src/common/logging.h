#ifndef DFIM_COMMON_LOGGING_H_
#define DFIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dfim {

/// \brief Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// \brief Minimal global logger writing to stderr.
///
/// Simulation experiments run quietly by default (kWarn); tests and examples
/// can raise verbosity. The logger is process-global and not synchronized —
/// the library itself is single-threaded by design (discrete-event sim).
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
  /// Emits one line "[LEVEL] message" if `level` passes the threshold.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// RAII stream that emits on destruction; backs the DFIM_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dfim

/// Usage: DFIM_LOG(kInfo) << "scheduled " << n << " ops";
#define DFIM_LOG(level)                                               \
  ::dfim::internal::LogMessage(::dfim::LogLevel::level).stream()

#endif  // DFIM_COMMON_LOGGING_H_
