#ifndef DFIM_COMMON_UNITS_H_
#define DFIM_COMMON_UNITS_H_

#include <cmath>
#include <cstdint>

namespace dfim {

/// Simulation time, in seconds.
using Seconds = double;
/// Money, in dollars.
using Dollars = double;
/// Data sizes, in megabytes (the paper prices storage per MB per quantum).
using MegaBytes = double;

/// \name Size conversions.
/// @{
inline constexpr MegaBytes KB(double v) { return v / 1024.0; }
inline constexpr MegaBytes MB(double v) { return v; }
inline constexpr MegaBytes GB(double v) { return v * 1024.0; }
inline constexpr double ToBytes(MegaBytes mb) { return mb * 1024.0 * 1024.0; }
inline constexpr MegaBytes FromBytes(double bytes) {
  return bytes / (1024.0 * 1024.0);
}
/// @}

/// \brief Number of whole pricing quanta that cover `span` seconds.
///
/// A span of exactly n quanta costs n quanta; anything more starts the next
/// quantum (IaaS pre-pays whole quanta). A zero or negative span costs 0.
inline int64_t QuantaCeil(Seconds span, Seconds quantum) {
  if (span <= 0) return 0;
  double q = span / quantum;
  int64_t whole = static_cast<int64_t>(q);
  // Guard against floating error: 3.0000000001 quanta is 3 quanta.
  if (q - static_cast<double>(whole) > 1e-9) return whole + 1;
  return whole;
}

/// \brief True when two simulated time points are equal up to float noise.
inline bool TimeEq(Seconds a, Seconds b, Seconds eps = 1e-9) {
  return std::fabs(a - b) <= eps;
}

}  // namespace dfim

#endif  // DFIM_COMMON_UNITS_H_
