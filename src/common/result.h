#ifndef DFIM_COMMON_RESULT_H_
#define DFIM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dfim {

/// \brief A value-or-Status holder, the library's alternative to exceptions.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of an errored Result is a programming error (asserted in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK Status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Propagates the error of a Result expression, else assigns its value.
#define DFIM_ASSIGN_OR_RETURN(lhs, expr)          \
  auto DFIM_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!DFIM_CONCAT_(_res_, __LINE__).ok())        \
    return DFIM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DFIM_CONCAT_(_res_, __LINE__)).value()

#define DFIM_CONCAT_IMPL_(a, b) a##b
#define DFIM_CONCAT_(a, b) DFIM_CONCAT_IMPL_(a, b)

}  // namespace dfim

#endif  // DFIM_COMMON_RESULT_H_
