#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dfim {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stdev) { return mean + stdev * Normal(); }

double Rng::TruncatedNormal(double mean, double stdev, double lo, double hi) {
  assert(lo <= hi);
  for (int i = 0; i < 64; ++i) {
    double v = Normal(mean, stdev);
    if (v >= lo && v <= hi) return v;
  }
  double v = Normal(mean, stdev);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

double Rng::Exponential(double mean) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth's method.
    double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace dfim
