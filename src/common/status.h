#ifndef DFIM_COMMON_STATUS_H_
#define DFIM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dfim {

/// \brief Error categories used across the library.
///
/// The set follows the RocksDB/Arrow convention of a small closed enum with
/// a free-form message. All public APIs that can fail return a Status (or a
/// Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kNotSupported,
};

/// \brief Returns a human-readable name for a StatusCode ("OK", "NotFound"...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// Cheap to copy in the OK case (no allocation); carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Propagates a non-OK Status from the current function.
#define DFIM_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::dfim::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace dfim

#endif  // DFIM_COMMON_STATUS_H_
