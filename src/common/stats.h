#ifndef DFIM_COMMON_STATS_H_
#define DFIM_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dfim {

/// \brief Streaming min/max/mean/stdev accumulator (Welford's algorithm).
///
/// Used to report the Table-4 style statistics of generated workloads and to
/// aggregate per-dataflow metrics in experiments.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stdev() const;
  /// Population variance helper used by stdev().
  double variance() const;

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  /// "min=.. max=.. mean=.. stdev=.. n=.." with the given float precision.
  std::string ToString(int precision = 2) const;

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-width histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  /// Creates `bins` equal-width buckets covering [lo, hi).
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t count(int bin) const { return counts_[static_cast<size_t>(bin)]; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }
  /// Inclusive lower edge of `bin`.
  double BinLow(int bin) const;
  /// Exclusive upper edge of `bin`.
  double BinHigh(int bin) const;

  /// Renders an ASCII bar chart, one row per bucket.
  std::string ToAscii(int width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

/// \brief Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& v);

/// \brief Sample standard deviation of a vector (0 for n < 2).
double Stdev(const std::vector<double>& v);

}  // namespace dfim

#endif  // DFIM_COMMON_STATS_H_
