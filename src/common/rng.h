#ifndef DFIM_COMMON_RNG_H_
#define DFIM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dfim {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
///
/// All stochastic components of the simulator draw from an explicitly seeded
/// Rng so that every experiment is reproducible run-to-run. Not thread-safe;
/// use one Rng per logical stream.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stdev);

  /// \brief Sample from a truncated normal: redraws until inside [lo, hi].
  ///
  /// Falls back to clamping after 64 rejections so pathological bounds
  /// cannot loop forever.
  double TruncatedNormal(double mean, double stdev, double lo, double hi);

  /// Exponential with the given mean (= 1/rate). Used for Poisson arrivals.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means).
  int64_t Poisson(double mean);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dfim

#endif  // DFIM_COMMON_RNG_H_
