#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dfim {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  int64_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(n_) *
            static_cast<double>(other.n_) / static_cast<double>(n);
  mean_ = mean;
  n_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::ToString(int precision) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.*f max=%.*f mean=%.*f stdev=%.*f n=%lld", precision,
                min(), precision, max(), precision, mean(), precision, stdev(),
                static_cast<long long>(n_));
  return buf;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / bins) {
  assert(bins > 0 && hi > lo);
  counts_.assign(static_cast<size_t>(bins), 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<size_t>((x - lo_) / bin_width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // float edge guard
  ++counts_[bin];
}

double Histogram::BinLow(int bin) const { return lo_ + bin * bin_width_; }
double Histogram::BinHigh(int bin) const { return lo_ + (bin + 1) * bin_width_; }

std::string Histogram::ToAscii(int width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (size_t i = 0; i < counts_.size(); ++i) {
    int bar = static_cast<int>(counts_[i] * width / peak);
    std::snprintf(buf, sizeof(buf), "[%8.2f, %8.2f) %6lld |",
                  BinLow(static_cast<int>(i)), BinHigh(static_cast<int>(i)),
                  static_cast<long long>(counts_[i]));
    out += buf;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Stdev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

}  // namespace dfim
