#include "cloud/fault_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace dfim {
namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
uint64_t Avalanche(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-independent counter-based stream key.
uint64_t Mix(uint64_t seed, uint64_t a, uint64_t b, uint64_t stream) {
  return Avalanche(Avalanche(Avalanche(seed ^ stream) ^ a) ^ b);
}

constexpr uint64_t kCrashStream = 0x63726173ULL;     // "cras"
constexpr uint64_t kStragglerStream = 0x73747261ULL; // "stra"
constexpr uint64_t kStorageStream = 0x73746f72ULL;   // "stor"
constexpr uint64_t kTornStream = 0x746f726eULL;      // "torn"
constexpr uint64_t kRotStream = 0x726f7434ULL;       // "rot4"
constexpr uint64_t kAcquireStream = 0x61637166ULL;   // "acqf"
constexpr uint64_t kBootStream = 0x626f6f74ULL;      // "boot"
constexpr uint64_t kPreemptStream = 0x7072656dULL;   // "prem"
constexpr uint64_t kCtlStream = 0x63746c63ULL;       // "ctlc"

/// Uniform double in [0, 1) from one hashed value.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

Status ValidateFaultOptions(const FaultOptions& opts) {
  auto bad_rate = [](double r) { return !(r >= 0.0 && r <= 1.0); };
  if (bad_rate(opts.crash_rate)) {
    return Status::InvalidArgument("crash_rate must be in [0, 1]");
  }
  if (bad_rate(opts.straggler_rate)) {
    return Status::InvalidArgument("straggler_rate must be in [0, 1]");
  }
  if (bad_rate(opts.storage_fault_rate)) {
    return Status::InvalidArgument("storage_fault_rate must be in [0, 1]");
  }
  if (!(opts.straggler_slowdown_min >= 1.0)) {
    return Status::InvalidArgument("straggler_slowdown_min must be >= 1");
  }
  if (!(opts.straggler_slowdown_max >= opts.straggler_slowdown_min)) {
    return Status::InvalidArgument(
        "straggler_slowdown_max must be >= straggler_slowdown_min");
  }
  if (opts.storage_fault_rate > 0 && !(opts.storage_fault_latency > 0)) {
    return Status::InvalidArgument(
        "storage_fault_latency must be positive when storage_fault_rate > 0");
  }
  if (bad_rate(opts.torn_write_rate)) {
    return Status::InvalidArgument("torn_write_rate must be in [0, 1]");
  }
  if (bad_rate(opts.bitrot_rate)) {
    return Status::InvalidArgument("bitrot_rate must be in [0, 1]");
  }
  if (opts.torn_write_rate > 0 && !(opts.torn_crash_multiplier >= 1.0)) {
    return Status::InvalidArgument(
        "torn_crash_multiplier must be >= 1 when torn_write_rate > 0");
  }
  if (bad_rate(opts.acquire_fail_rate)) {
    return Status::InvalidArgument("acquire_fail_rate must be in [0, 1]");
  }
  if (bad_rate(opts.preempt_rate)) {
    return Status::InvalidArgument("preempt_rate must be in [0, 1]");
  }
  if (!(opts.boot_delay_max >= 0)) {
    return Status::InvalidArgument("boot_delay_max must be >= 0");
  }
  if (!(opts.preempt_notice >= 0)) {
    return Status::InvalidArgument("preempt_notice must be >= 0");
  }
  if (bad_rate(opts.ctl_crash_rate)) {
    return Status::InvalidArgument("ctl_crash_rate must be in [0, 1]");
  }
  if (opts.crash_at_boundary < -1) {
    return Status::InvalidArgument("crash_at_boundary must be >= -1");
  }
  if (opts.crash_at_boundary_2 < -1) {
    return Status::InvalidArgument("crash_at_boundary_2 must be >= -1");
  }
  return Status::OK();
}

FaultTrace FaultModel::DrawTrace(uint64_t run_key, int num_containers,
                                 Seconds horizon, Seconds quantum) const {
  FaultTrace trace;
  if (num_containers <= 0) return trace;
  trace.containers.resize(static_cast<size_t>(num_containers));
  if (!enabled()) return trace;
  // Cover overruns past the planned horizon (stragglers, estimation error):
  // hazard draws extend a margin of quanta beyond it.
  int64_t max_q = QuantaCeil(std::max(horizon, quantum), quantum) + 8;
  for (int c = 0; c < num_containers; ++c) {
    auto& f = trace.containers[static_cast<size_t>(c)];
    if (opts_.crash_rate > 0) {
      // Per-quantum hazard: the first losing draw kills the container at a
      // uniform instant inside that quantum (spot preemption is unannounced).
      Rng rng(Mix(opts_.seed, run_key, static_cast<uint64_t>(c), kCrashStream));
      for (int64_t q = 0; q < max_q; ++q) {
        if (rng.Uniform() < opts_.crash_rate) {
          f.crash_at = (static_cast<double>(q) + rng.Uniform()) * quantum;
          break;
        }
      }
    }
    if (opts_.straggler_rate > 0) {
      Rng rng(
          Mix(opts_.seed, run_key, static_cast<uint64_t>(c), kStragglerStream));
      if (rng.Uniform() < opts_.straggler_rate) {
        f.slowdown = rng.Uniform(opts_.straggler_slowdown_min,
                                 opts_.straggler_slowdown_max);
      }
    }
  }
  return trace;
}

bool FaultModel::StorageOpFaults(uint64_t run_key, uint64_t op_key) const {
  if (opts_.storage_fault_rate <= 0) return false;
  return ToUnit(Mix(opts_.seed, run_key, op_key, kStorageStream)) <
         opts_.storage_fault_rate;
}

bool FaultModel::TornWrite(uint64_t run_key, uint64_t persist_key,
                           bool crash_interrupted) const {
  if (opts_.torn_write_rate <= 0) return false;
  double rate = opts_.torn_write_rate *
                (crash_interrupted ? opts_.torn_crash_multiplier : 1.0);
  return ToUnit(Mix(opts_.seed, run_key, persist_key, kTornStream)) <
         std::min(1.0, rate);
}

Seconds FaultModel::BitRotOnset(uint64_t object_key, int64_t generation,
                                Seconds now, Seconds quantum,
                                int64_t max_quanta) const {
  if (opts_.bitrot_rate <= 0 || quantum <= 0) return kNeverFails;
  // Per-quantum hazard walk, same shape as the crash draw: the first losing
  // draw rots the object at a uniform instant inside that quantum.
  Rng rng(Mix(opts_.seed, object_key, static_cast<uint64_t>(generation),
              kRotStream));
  for (int64_t q = 0; q < max_quanta; ++q) {
    if (rng.Uniform() < opts_.bitrot_rate) {
      return now + (static_cast<double>(q) + rng.Uniform()) * quantum;
    }
  }
  return kNeverFails;
}

bool FaultModel::AcquireDenied(uint64_t request_index) const {
  if (opts_.acquire_fail_rate <= 0) return false;
  return ToUnit(Mix(opts_.seed, request_index, 0, kAcquireStream)) <
         opts_.acquire_fail_rate;
}

Seconds FaultModel::BootDelay(uint64_t container_id) const {
  if (opts_.boot_delay_max <= 0) return 0;
  return ToUnit(Mix(opts_.seed, container_id, 0, kBootStream)) *
         opts_.boot_delay_max;
}

Seconds FaultModel::PreemptOnset(uint64_t container_id, Seconds quantum,
                                 int64_t max_quanta) const {
  if (opts_.preempt_rate <= 0 || quantum <= 0) return kNeverFails;
  // Per-quantum hazard walk from the lease start, same shape as the crash
  // draw: the first losing draw reclaims the VM at a uniform instant inside
  // that quantum.
  Rng rng(Mix(opts_.seed, container_id, 0, kPreemptStream));
  for (int64_t q = 0; q < max_quanta; ++q) {
    if (rng.Uniform() < opts_.preempt_rate) {
      return (static_cast<double>(q) + rng.Uniform()) * quantum;
    }
  }
  return kNeverFails;
}

bool FaultModel::CtlCrashAt(uint64_t boundary_index) const {
  const int64_t idx = static_cast<int64_t>(boundary_index);
  if (opts_.crash_at_boundary >= 0 && idx == opts_.crash_at_boundary) {
    return true;
  }
  if (opts_.crash_at_boundary_2 >= 0 && idx == opts_.crash_at_boundary_2) {
    return true;
  }
  if (opts_.ctl_crash_rate <= 0) return false;
  return ToUnit(Mix(opts_.seed, boundary_index, 0, kCtlStream)) <
         opts_.ctl_crash_rate;
}

}  // namespace dfim
