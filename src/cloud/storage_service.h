#ifndef DFIM_CLOUD_STORAGE_SERVICE_H_
#define DFIM_CLOUD_STORAGE_SERVICE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cloud/pricing.h"
#include "common/status.h"
#include "common/units.h"

namespace dfim {

/// \brief Outcome of one (possibly hedged) storage read.
///
/// Reads in the simulator are latency, not bytes: a transient fault delays
/// the response instead of failing it, and a hedge issues one duplicate
/// request whose response races the primary (first response wins).
struct ReadOutcome {
  /// Effective latency the reader observes.
  Seconds latency = 0;
  /// The primary request hit a transient fault (latency spike).
  bool primary_fault = false;
  /// A duplicate request was issued (the primary outlived hedge_after).
  bool hedged = false;
  /// The duplicate hit its own, independently drawn, transient fault.
  bool hedge_fault = false;
  /// The duplicate's response arrived before the primary's.
  bool hedge_won = false;
};

/// \brief The cloud's persistent object store (paper §3, Cloud Model).
///
/// Tracks named objects (table partitions, index partitions, intermediate
/// results) with sizes, and accrues the storage bill over simulated time:
/// the provider charges `Mst` dollars per MB per quantum for whatever is
/// stored. `AdvanceTo` integrates the bill; objects added/removed between
/// advances are charged for the fraction of time they were present.
class StorageService {
 public:
  explicit StorageService(PricingModel pricing) : pricing_(pricing) {}

  /// Stores (or replaces) an object of the given size at simulated `now`.
  void Put(const std::string& path, MegaBytes size, Seconds now);

  /// Deletes an object; missing paths are ignored (idempotent).
  void Delete(const std::string& path, Seconds now);

  bool Exists(const std::string& path) const;

  /// Size of an object, or 0 when absent.
  MegaBytes SizeOf(const std::string& path) const;

  /// Total MB currently stored.
  MegaBytes used() const { return used_; }

  size_t object_count() const { return objects_.size(); }

  /// \brief Advances the billing clock, accruing storage cost.
  ///
  /// Must be called with non-decreasing times; Put/Delete internally settle
  /// the bill up to their own timestamp first. A time regression is clamped
  /// to the last billed instant — logged as a caller bug here, silently for
  /// Put/Delete (object batches legitimately arrive slightly out of order) —
  /// rather than accruing negative MB·quanta. Every clamp, silent or
  /// logged, increments clock_clamps() so callers can surface regressions
  /// as a metric instead of losing them.
  void AdvanceTo(Seconds now);

  /// Number of time regressions clamped so far (Put/Delete/AdvanceTo).
  int64_t clock_clamps() const { return clock_clamps_; }

  /// \brief Latency semantics of one (possibly hedged) read — pure, the
  /// fault draws are the caller's (the execution simulator draws them
  /// deterministically per (run_key, op_key, attempt)).
  ///
  /// The primary takes `base_latency` plus `fault_latency` when
  /// `primary_fault`. With hedging on, a primary that outlives `hedge_after`
  /// triggers one duplicate (its independent fault draw passed in as
  /// `hedge_fault`), and the reader proceeds with whichever response lands
  /// first; ties go to the primary. With hedging off the arithmetic is
  /// bit-identical to the un-hedged read path (DESIGN.md §9).
  static ReadOutcome SimulateRead(Seconds base_latency, bool primary_fault,
                                  Seconds fault_latency, bool hedge_enabled,
                                  Seconds hedge_after, bool hedge_fault);

  /// Dollars accrued so far (up to the last AdvanceTo/Put/Delete).
  Dollars accrued_cost() const { return accrued_cost_; }

  /// MB·quanta integral accrued so far (unit used by the gain model).
  double accrued_mb_quanta() const { return accrued_mb_quanta_; }

  Seconds last_billed() const { return last_billed_; }

 private:
  void Settle(Seconds now);

  PricingModel pricing_;
  std::unordered_map<std::string, MegaBytes> objects_;
  MegaBytes used_ = 0;
  Seconds last_billed_ = 0;
  Dollars accrued_cost_ = 0;
  double accrued_mb_quanta_ = 0;
  int64_t clock_clamps_ = 0;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_STORAGE_SERVICE_H_
