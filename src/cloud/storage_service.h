#ifndef DFIM_CLOUD_STORAGE_SERVICE_H_
#define DFIM_CLOUD_STORAGE_SERVICE_H_

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "cloud/fault_model.h"
#include "cloud/pricing.h"
#include "common/status.h"
#include "common/units.h"

namespace dfim {

/// \brief Outcome of one (possibly hedged) storage read.
///
/// Reads in the simulator are latency, not bytes: a transient fault delays
/// the response instead of failing it, and a hedge issues one duplicate
/// request whose response races the primary (first response wins).
struct ReadOutcome {
  /// Effective latency the reader observes.
  Seconds latency = 0;
  /// The primary request hit a transient fault (latency spike).
  bool primary_fault = false;
  /// A duplicate request was issued (the primary outlived hedge_after).
  bool hedged = false;
  /// The duplicate hit its own, independently drawn, transient fault.
  bool hedge_fault = false;
  /// The duplicate's response arrived before the primary's.
  bool hedge_won = false;
};

/// \brief Integrity stamp attached to a Put (DESIGN.md §12).
///
/// The default stamp (no corruption, no rot, no token) keeps the Put on the
/// pre-integrity arithmetic path exactly.
struct PutStamp {
  /// The write landed torn: its content checksum will never verify.
  bool torn = false;
  /// Pre-drawn latent bit-rot onset instant (kNeverFails = never). Once the
  /// simulated clock passes it, the object's checksum stops verifying.
  Seconds rot_at = kNeverFails;
  /// Idempotency token (0 = none): a Put replaying the token currently
  /// recorded on the object is a no-op at the same generation, so a
  /// hedge-then-primary double landing never bumps the generation.
  uint64_t token = 0;
};

/// \brief Checksum-verification outcome for one stored object.
enum class VerifyResult {
  /// Checksum verifies: the object is intact at the queried instant.
  kClean,
  /// Corrupt, and this verification is the first to notice (the ledger's
  /// detected counter was incremented by this call).
  kCorrupt,
  /// Corrupt, but a previous verification already detected (and counted) it.
  kAlreadyDetected,
  /// No object at that path.
  kMissing,
};

/// \brief One stored object with its integrity stamps.
struct StoredObject {
  MegaBytes size = 0;
  /// Monotone per-path write counter, bumped by every non-replay Put. The
  /// catalog records the generation it expects for each built index
  /// partition, so a stale overwrite (generation mismatch) is caught even
  /// when both contents checksum clean.
  int64_t generation = 0;
  /// Idempotency token of the last write (0 = none).
  uint64_t token = 0;
  /// Checksum is broken (torn write, or realized bit-rot).
  bool corrupt = false;
  /// The corruption was already counted by a verification.
  bool detected = false;
  /// Pending latent bit-rot onset (kNeverFails = none).
  Seconds rot_at = kNeverFails;
};

/// \brief The cloud's persistent object store (paper §3, Cloud Model).
///
/// Tracks named objects (table partitions, index partitions, intermediate
/// results) with sizes, and accrues the storage bill over simulated time:
/// the provider charges `Mst` dollars per MB per quantum for whatever is
/// stored. `AdvanceTo` integrates the bill; objects added/removed between
/// advances are charged for the fraction of time they were present.
///
/// Integrity layer (DESIGN.md §12): each object carries a content-checksum
/// verdict and a generation number. Puts may stamp a torn write or a
/// pre-drawn bit-rot onset; `VerifyRead` checks the stamp at a given
/// instant. A zero-slack corruption ledger tracks every injected corruption
/// until it is detected or provably dead (overwritten/deleted before any
/// verification saw it). With no stamps ever passed, the billing and object
/// arithmetic is bit-identical to the pre-integrity store.
class StorageService {
 public:
  explicit StorageService(PricingModel pricing) : pricing_(pricing) {}

  /// Stores (or replaces) an object of the given size at simulated `now`,
  /// applying the integrity stamp. Returns the object's generation: bumped
  /// on a real write, unchanged when `stamp.token` matches the recorded
  /// token (idempotent replay — the duplicate of an already-landed persist).
  int64_t Put(const std::string& path, MegaBytes size, Seconds now,
              const PutStamp& stamp = PutStamp{});

  /// Deletes an object; missing paths are ignored (idempotent).
  void Delete(const std::string& path, Seconds now);

  bool Exists(const std::string& path) const;

  /// Size of an object, or 0 when absent.
  MegaBytes SizeOf(const std::string& path) const;

  /// Generation of an object, or 0 when absent.
  int64_t Generation(const std::string& path) const;

  /// \brief Verifies an object's checksum at `now` (latent rot due by then
  /// is realized first). A corrupt object is marked detected so the ledger
  /// counts each corruption's discovery exactly once.
  VerifyResult VerifyRead(const std::string& path, Seconds now);

  /// Total MB currently stored.
  MegaBytes used() const { return used_; }

  size_t object_count() const { return objects_.size(); }

  /// Deterministically ordered object map (scrub cursors walk it).
  const std::map<std::string, StoredObject>& objects() const {
    return objects_;
  }

  /// \brief Advances the billing clock, accruing storage cost.
  ///
  /// Must be called with non-decreasing times; Put/Delete internally settle
  /// the bill up to their own timestamp first. A time regression is clamped
  /// to the last billed instant — logged as a caller bug here, silently for
  /// Put/Delete (object batches legitimately arrive slightly out of order) —
  /// rather than accruing negative MB·quanta. Every clamp, silent or
  /// logged, increments clock_clamps() so callers can surface regressions
  /// as a metric instead of losing them.
  void AdvanceTo(Seconds now);

  /// Number of time regressions clamped so far (Put/Delete/AdvanceTo).
  int64_t clock_clamps() const { return clock_clamps_; }

  /// \name Corruption ledger (zero-slack accounting, DESIGN.md §12)
  /// Every injected corruption ends in exactly one bucket:
  ///   injected == detected + dead + latent(now).
  /// @{
  /// Corruptions realized so far: torn Puts plus bit-rot onsets crossed by
  /// the billing clock.
  int64_t corruptions_injected() const { return corruptions_injected_; }
  /// Corruptions a VerifyRead discovered (each counted once).
  int64_t corruptions_detected() const { return corruptions_detected_; }
  /// Corrupt objects overwritten or deleted before any verification saw
  /// them — provably never served to a verified reader.
  int64_t corruptions_dead() const { return corruptions_dead_; }
  /// Corrupt-but-undetected objects present at `now` (settles rot first).
  int64_t LatentCorrupt(Seconds now);
  /// @}

  /// \name Detection watermark (journaled recovery, DESIGN.md §15)
  /// The store is the durable half of a control-plane crash: it keeps the
  /// pre-crash detections while the service's counters roll back to the
  /// last journal snapshot. Replay would then see kAlreadyDetected where
  /// the original run saw kCorrupt — a different verdict, a different
  /// counter. The detection log lets recovery *rewind* detections past the
  /// snapshot's watermark so the replayed verifications re-discover them
  /// identically. Off (zero overhead) until EnableDetectionLog().
  /// @{

  /// Starts recording first-detections; call before any VerifyRead when
  /// the control plane journals its state.
  void EnableDetectionLog() { record_detections_ = true; }

  /// Monotone sequence number of the latest first-detection (0 = none) —
  /// the watermark a journal snapshot captures.
  int64_t detection_seq() const { return detection_seq_; }

  /// Un-detects every logged detection with sequence > `seq` whose object
  /// still exists at the logged generation, decrementing the detected
  /// counter, and truncates the log. Returns how many were rewound.
  int64_t RewindDetectionsTo(int64_t seq);

  /// True when the object at `path` exists and carries exactly `token`
  /// (a pre-crash landed persist the replay must not re-bill).
  bool TokenMatches(const std::string& path, uint64_t token) const;
  /// @}

  /// \brief Latency semantics of one (possibly hedged) read — pure, the
  /// fault draws are the caller's (the execution simulator draws them
  /// deterministically per (run_key, op_key, attempt)).
  ///
  /// The primary takes `base_latency` plus `fault_latency` when
  /// `primary_fault`. With hedging on, a primary that outlives `hedge_after`
  /// triggers one duplicate (its independent fault draw passed in as
  /// `hedge_fault`), and the reader proceeds with whichever response lands
  /// first; ties go to the primary. With hedging off the arithmetic is
  /// bit-identical to the un-hedged read path (DESIGN.md §9).
  static ReadOutcome SimulateRead(Seconds base_latency, bool primary_fault,
                                  Seconds fault_latency, bool hedge_enabled,
                                  Seconds hedge_after, bool hedge_fault);

  /// Dollars accrued so far (up to the last AdvanceTo/Put/Delete).
  Dollars accrued_cost() const { return accrued_cost_; }

  /// MB·quanta integral accrued so far (unit used by the gain model).
  double accrued_mb_quanta() const { return accrued_mb_quanta_; }

  Seconds last_billed() const { return last_billed_; }

 private:
  /// A scheduled bit-rot onset; lazily invalidated by generation bumps.
  struct RotEvent {
    Seconds at = 0;
    int64_t generation = 0;
    std::string path;
    bool operator>(const RotEvent& o) const { return at > o.at; }
  };

  void Settle(Seconds now);
  /// Realizes every pending rot onset due by `now` (marks objects corrupt
  /// and counts them injected). No-op — zero branches beyond one empty
  /// check — while no rot was ever stamped.
  void RealizeRotUpTo(Seconds now);

  PricingModel pricing_;
  std::map<std::string, StoredObject> objects_;
  std::priority_queue<RotEvent, std::vector<RotEvent>, std::greater<RotEvent>>
      rot_queue_;
  MegaBytes used_ = 0;
  Seconds last_billed_ = 0;
  Dollars accrued_cost_ = 0;
  double accrued_mb_quanta_ = 0;
  int64_t clock_clamps_ = 0;
  int64_t corruptions_injected_ = 0;
  int64_t corruptions_detected_ = 0;
  int64_t corruptions_dead_ = 0;
  /// One logged first-detection (EnableDetectionLog only).
  struct Detection {
    int64_t seq = 0;
    int64_t generation = 0;
    std::string path;
  };
  bool record_detections_ = false;
  int64_t detection_seq_ = 0;
  std::vector<Detection> detection_log_;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_STORAGE_SERVICE_H_
