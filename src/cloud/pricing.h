#ifndef DFIM_CLOUD_PRICING_H_
#define DFIM_CLOUD_PRICING_H_

#include <cstdint>

#include "common/units.h"

namespace dfim {

/// \brief The provider's pricing policy (paper §3, Cloud Model).
///
/// Compute is pre-paid per whole time quantum `Q` at `Mc` dollars per
/// quantum; storage is charged per MB per quantum at `Mst`. The paper plugs
/// the pricing model into the scheduler, so everything that needs prices
/// takes a PricingModel value — swap it to model a different provider.
struct PricingModel {
  /// Quantum size `TQ` in seconds (default 60 s, Table 3).
  Seconds quantum = 60.0;
  /// VM price `Mc` per quantum in dollars (default $0.1, Table 3).
  Dollars vm_price_per_quantum = 0.1;
  /// Storage price `Mst` per MB per quantum (default $1e-4, Table 3).
  Dollars storage_price_per_mb_per_quantum = 1e-4;

  /// \brief Derives `Mst` from a per-GB-per-month price, per the paper:
  /// `Mst = (MC * 12 * Q) / (365.25 * 24 * 60)` with Q in minutes.
  static PricingModel FromMonthlyStoragePrice(Dollars per_gb_per_month,
                                              Seconds quantum,
                                              Dollars vm_price_per_quantum);

  /// Dollars for leasing one VM for `quanta` quanta.
  Dollars VmCost(int64_t quanta) const {
    return vm_price_per_quantum * static_cast<double>(quanta);
  }

  /// Dollars for storing `size` MB for `quanta` quanta.
  Dollars StorageCost(MegaBytes size, double quanta) const {
    return storage_price_per_mb_per_quantum * size * quanta;
  }

  /// Whole quanta needed to cover `span` seconds.
  int64_t QuantaFor(Seconds span) const { return QuantaCeil(span, quantum); }

  /// Converts seconds to (fractional) quanta.
  double ToQuanta(Seconds s) const { return s / quantum; }
};

}  // namespace dfim

#endif  // DFIM_CLOUD_PRICING_H_
