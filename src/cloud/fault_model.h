#ifndef DFIM_CLOUD_FAULT_MODEL_H_
#define DFIM_CLOUD_FAULT_MODEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace dfim {

/// Sentinel crash time for containers that never fail.
inline constexpr Seconds kNeverFails = std::numeric_limits<double>::infinity();

/// \brief Fault-injection rates (paper §3 cloud model, stressed).
///
/// The paper's model is explicit that a deleted/failed container loses its
/// local disk and that index partitions only survive when persisted to the
/// storage service. These knobs exercise that machinery: container
/// crash/spot-preemption (per-quantum hazard), per-container straggler
/// slowdowns, and transient storage faults on reads (latency spike) and
/// writes (fail + retry). All rates zero (the default) disables injection
/// entirely — the zero-fault pipeline is a strict no-op.
struct FaultOptions {
  /// Probability a container dies within any given leased quantum.
  double crash_rate = 0;
  /// Probability a container is a straggler for one dataflow execution.
  double straggler_rate = 0;
  /// Straggler slowdown factor range (CPU and transfers stretch by it).
  double straggler_slowdown_min = 1.5;
  double straggler_slowdown_max = 3.0;
  /// Probability one storage-service operation (read of an input, Put of a
  /// built index partition) hits a transient fault.
  double storage_fault_rate = 0;
  /// Latency added to a faulted storage read (the read still completes).
  Seconds storage_fault_latency = 30.0;
  /// \name Data corruption (integrity subsystem, DESIGN.md §12)
  /// @{
  /// Probability one persist lands torn: the Put succeeds but the object's
  /// content checksum can never verify.
  double torn_write_rate = 0;
  /// Multiplier (>= 1) on `torn_write_rate` for crash-interrupted persists
  /// (the build's container died during the run, so its single Put attempt
  /// raced the failure).
  double torn_crash_multiplier = 4.0;
  /// Per-object, per-quantum probability of latent bit-rot onset: once the
  /// onset quantum passes, the stored object's checksum stops verifying.
  double bitrot_rate = 0;
  /// @}
  /// \name Provider control-plane faults (elastic fleet, DESIGN.md §13).
  /// These model the IaaS control plane misbehaving, not the leased VM
  /// itself: acquisition requests throttled, cold starts, and spot reclaims
  /// announced with a notice window. All draws come from dedicated streams,
  /// so existing crash/straggler/storage traces are bit-identical whether
  /// or not the provider knobs are set.
  /// @{
  /// Probability one fresh-container acquire request is denied (quota
  /// throttle). The very first container of an empty fleet is exempt — the
  /// model throttles scale-out, it never wedges the service at zero VMs.
  double acquire_fail_rate = 0;
  /// Cold-start lag: a fresh container's boot delay is uniform in
  /// [0, boot_delay_max] seconds. Billing starts at acquisition (the lease
  /// is pre-paid), but the container only becomes schedulable once booted.
  Seconds boot_delay_max = 0;
  /// Per-quantum hazard of spot preemption, drawn once per container at
  /// acquisition: the provider reclaims the VM at the drawn instant and
  /// charges nothing past it.
  double preempt_rate = 0;
  /// Reclaim notice: seconds of warning before the reclaim instant. During
  /// the notice window the service drains the doomed container — no new
  /// work is dispatched and running builds are stopped with their progress
  /// staged off. 0 = unannounced reclaim (progress dies with the disk).
  Seconds preempt_notice = 0;
  /// @}
  /// \name Control-plane crashes (journaled recovery, DESIGN.md §15).
  /// These kill the *service brain* — catalog runtime state, tuner history,
  /// admission queue, fleet ledger — at a stage boundary of the decision
  /// loop; the storage service (the durable cloud) survives. Requires
  /// `ServiceOptions::journal.enabled` (checked at service entry): a crash
  /// without a journal would simply lose the run. Draws come from a
  /// dedicated stream keyed by the service's monotone boundary counter, so
  /// all other fault traces are bit-identical whether or not these are set.
  /// @{
  /// Per-boundary probability the control plane dies at that boundary.
  double ctl_crash_rate = 0;
  /// Directed mode: crash exactly at boundary-counter value `k` (-1 = off).
  /// The exhaustive recovery sweep drives this through every boundary.
  int64_t crash_at_boundary = -1;
  /// Second directed crash (double-crash tests: the replay itself dies).
  int64_t crash_at_boundary_2 = -1;
  /// @}
  /// Seed of the fault universe; independent of all other seeds.
  uint64_t seed = 1;

  bool enabled() const {
    return crash_rate > 0 || straggler_rate > 0 || storage_fault_rate > 0 ||
           corruption_enabled();
  }
  bool corruption_enabled() const {
    return torn_write_rate > 0 || bitrot_rate > 0;
  }
  bool provider_enabled() const {
    return acquire_fail_rate > 0 || boot_delay_max > 0 || preempt_rate > 0;
  }
  /// Deliberately not part of enabled(): control-plane crashes must not
  /// perturb the container/storage draw streams.
  bool ctl_enabled() const {
    return ctl_crash_rate > 0 || crash_at_boundary >= 0 ||
           crash_at_boundary_2 >= 0;
  }
};

/// \brief Rejects out-of-range fault knobs before any draw consumes them.
///
/// Rates must lie in [0, 1]; the straggler slowdown range must satisfy
/// 1 <= min <= max (a slowdown below 1 would *speed up* a "straggler" and
/// break the speculation watermark's healthy-estimate assumption); the
/// storage fault latency must be positive whenever the fault rate is
/// nonzero. Called from the simulator and the service entry points so a
/// misconfigured harness fails fast instead of producing silent nonsense.
Status ValidateFaultOptions(const FaultOptions& opts);

/// \brief Pre-drawn faults of one container for one execution.
struct ContainerFaults {
  /// Schedule-relative instant the container dies (kNeverFails if never).
  /// Everything unfinished at that instant — dataflow ops, build ops, the
  /// local-disk cache — is lost (paper §3).
  Seconds crash_at = kNeverFails;
  /// Multiplier (>= 1) on CPU time and transfers; 1.0 = healthy.
  double slowdown = 1.0;
  /// Provider spot-reclaim instant (schedule-relative; kNeverFails = none).
  /// At this instant the VM is gone exactly like a crash, except the caller
  /// classifies the loss as a preemption and is charged nothing past it.
  Seconds reclaim_at = kNeverFails;
  /// Start of the reclaim-notice window (<= reclaim_at). From this instant
  /// the container only drains: no new op is dispatched to it, and running
  /// builds are stopped with their partial progress carried off the doomed
  /// disk (graceful drain, DESIGN.md §13).
  Seconds notice_at = kNeverFails;

  bool crashes() const { return crash_at < kNeverFails; }
  bool straggles() const { return slowdown > 1.0; }
  bool reclaimed() const { return reclaim_at < kNeverFails; }
};

/// \brief A reproducible fault trace for one execution attempt.
struct FaultTrace {
  std::vector<ContainerFaults> containers;

  bool any() const {
    for (const auto& c : containers) {
      if (c.crashes() || c.straggles() || c.reclaimed()) return true;
    }
    return false;
  }
};

/// \brief Deterministic, seeded fault source.
///
/// Every draw is a pure function of (seed, run_key, stream, index) via
/// counter-based hashing, so traces are bit-identical across runs with the
/// same seed regardless of call order, and the model never perturbs any
/// other RNG stream (the zero-fault path stays bit-identical to a build
/// without fault injection).
class FaultModel {
 public:
  explicit FaultModel(const FaultOptions& opts) : opts_(opts) {}

  const FaultOptions& options() const { return opts_; }
  bool enabled() const { return opts_.enabled(); }

  /// \brief Pre-draws the fault trace for one execution attempt.
  ///
  /// `run_key` identifies the attempt (e.g. hash of dataflow id and retry
  /// number); `horizon` bounds the crash-hazard walk (crashes are drawn per
  /// leased quantum up to a margin past the horizon, so late overruns are
  /// still covered).
  FaultTrace DrawTrace(uint64_t run_key, int num_containers, Seconds horizon,
                       Seconds quantum) const;

  /// \brief Deterministic transient-fault draw for one storage operation.
  ///
  /// `op_key` identifies the operation within the run (op id for reads,
  /// a persist key + attempt number for Put retries), so a retry of the
  /// same operation re-draws independently.
  bool StorageOpFaults(uint64_t run_key, uint64_t op_key) const;

  /// \brief Deterministic torn-write draw for one landing persist attempt.
  ///
  /// `persist_key` identifies the attempt (same key space as the Put fault
  /// draws); `crash_interrupted` biases the rate by `torn_crash_multiplier`
  /// (the persist raced the container's death). Pure counter-based hash —
  /// bit-identical per (seed, run_key, persist_key).
  bool TornWrite(uint64_t run_key, uint64_t persist_key,
                 bool crash_interrupted) const;

  /// \brief Pre-draws the latent bit-rot onset for one stored object.
  ///
  /// The draw is keyed on (object path hash, generation) so an overwrite
  /// re-draws independently, and walks a per-quantum hazard starting at
  /// `now` for up to `max_quanta` quanta (bound it by the experiment
  /// horizon; rot past the horizon is unobservable). Returns the absolute
  /// onset instant, or kNeverFails.
  Seconds BitRotOnset(uint64_t object_key, int64_t generation, Seconds now,
                      Seconds quantum, int64_t max_quanta) const;

  /// \brief Deterministic quota-throttle draw for one fresh-container
  /// acquire request.
  ///
  /// `request_index` is the fleet's monotone acquire-request counter, so a
  /// retry after backoff is a *new* request and re-draws independently.
  bool AcquireDenied(uint64_t request_index) const;

  /// \brief Cold-start lag of one fresh container, uniform in
  /// [0, boot_delay_max].
  ///
  /// Keyed on the container id, so one container's delay is stable no
  /// matter when in the run it is acquired or what the rest of the fleet
  /// is doing.
  Seconds BootDelay(uint64_t container_id) const;

  /// \brief Pre-draws the spot-reclaim instant for one fresh container.
  ///
  /// Per-quantum hazard walk starting at the lease start (same shape as
  /// the crash draw), bounded by `max_quanta`. Returns the reclaim offset
  /// from the lease start, or kNeverFails.
  Seconds PreemptOnset(uint64_t container_id, Seconds quantum,
                       int64_t max_quanta) const;

  /// \brief Deterministic control-plane crash draw at one stage boundary.
  ///
  /// `boundary_index` is the service's monotone boundary counter (never
  /// restored by recovery, so a directed crash fires exactly once and a
  /// replayed boundary re-draws at a fresh index instead of re-firing).
  bool CtlCrashAt(uint64_t boundary_index) const;

 private:
  FaultOptions opts_;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_FAULT_MODEL_H_
