#ifndef DFIM_CLOUD_CONTAINER_H_
#define DFIM_CLOUD_CONTAINER_H_

#include <cstdint>
#include <limits>
#include <memory>

#include "cloud/lru_cache.h"
#include "cloud/pricing.h"
#include "common/units.h"

namespace dfim {

/// \brief Fixed hardware capacity of one VM/container (paper §3, §6.1).
///
/// The paper assumes homogeneous containers: 1 CPU, one local disk of
/// 100 GB at 250 MB/s (typical SSD), and 1 Gbps network (= 125 MB/s).
struct ContainerSpec {
  double cpu_cores = 1.0;
  MegaBytes memory = 8192;
  MegaBytes disk = 100.0 * 1024.0;
  double disk_mb_per_sec = 250.0;
  double net_mb_per_sec = 125.0;
};

/// \brief A leased VM with quantum accounting and a local-disk LRU cache.
///
/// Lease time is pre-paid in whole quanta starting at `lease_start`. The
/// container is alive until the end of the last charged quantum; extending
/// the lease past that boundary charges further quanta. When a container is
/// deleted, its local disk (cache) is lost (paper §3: files on local disk
/// cannot be recovered).
class Container {
 public:
  Container(int id, const ContainerSpec& spec, const PricingModel& pricing,
            Seconds lease_start);

  int id() const { return id_; }
  const ContainerSpec& spec() const { return spec_; }

  Seconds lease_start() const { return lease_start_; }
  /// End of the last charged quantum.
  Seconds lease_end() const;
  int64_t quanta_charged() const { return quanta_charged_; }

  /// \brief Ensures the lease covers time `t`, charging new quanta as needed.
  ///
  /// Returns the number of quanta newly charged.
  int64_t ExtendLeaseTo(Seconds t);

  /// True when `t` is strictly before the lease end.
  bool AliveAt(Seconds t) const { return t < lease_end() - 1e-9; }

  /// End of the quantum containing `t` (for preemption at quantum expiry).
  Seconds QuantumEndAt(Seconds t) const;

  /// \name Provider control-plane state (elastic fleet, DESIGN.md §13).
  ///
  /// `usable_at` is the instant the container finishes booting: billing
  /// starts at `lease_start` (the lease is pre-paid), but the scheduler
  /// may not place work on it earlier. `preempt_at` is the pre-drawn spot
  /// reclaim instant (absolute time; +inf when the provider never takes
  /// the VM back). Both default to the benign values, so code that never
  /// sets them sees exactly the pre-elastic container.
  /// @{
  Seconds usable_at() const { return usable_at_; }
  void set_usable_at(Seconds t) { usable_at_ = t; }
  Seconds preempt_at() const { return preempt_at_; }
  void set_preempt_at(Seconds t) { preempt_at_ = t; }
  /// True when `t` is inside the lease, past boot, and before the reclaim.
  bool UsableAt(Seconds t) const {
    return AliveAt(t) && t >= usable_at_ - 1e-9 && t < preempt_at_ - 1e-9;
  }
  /// @}

  LruCache& cache() { return cache_; }
  const LruCache& cache() const { return cache_; }

  /// Seconds to pull `size` MB from the storage service over the network.
  Seconds TransferTime(MegaBytes size) const {
    return size / spec_.net_mb_per_sec;
  }

 private:
  int id_;
  ContainerSpec spec_;
  PricingModel pricing_;
  Seconds lease_start_;
  int64_t quanta_charged_ = 0;
  Seconds usable_at_ = 0;
  Seconds preempt_at_ = std::numeric_limits<double>::infinity();
  LruCache cache_;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_CONTAINER_H_
