#include "cloud/container.h"

#include <cmath>

namespace dfim {

Container::Container(int id, const ContainerSpec& spec,
                     const PricingModel& pricing, Seconds lease_start)
    : id_(id),
      spec_(spec),
      pricing_(pricing),
      lease_start_(lease_start),
      cache_(spec.disk) {
  // A freshly allocated container is charged its first quantum immediately:
  // resources are pre-paid (paper §3).
  quanta_charged_ = 1;
  // Usable from the lease start unless a boot delay is injected later.
  usable_at_ = lease_start;
}

Seconds Container::lease_end() const {
  return lease_start_ +
         static_cast<double>(quanta_charged_) * pricing_.quantum;
}

int64_t Container::ExtendLeaseTo(Seconds t) {
  if (t <= lease_end()) return 0;
  int64_t needed = QuantaCeil(t - lease_start_, pricing_.quantum);
  if (needed <= quanta_charged_) return 0;
  int64_t added = needed - quanta_charged_;
  quanta_charged_ = needed;
  return added;
}

Seconds Container::QuantumEndAt(Seconds t) const {
  if (t <= lease_start_) return lease_start_ + pricing_.quantum;
  double offset = (t - lease_start_) / pricing_.quantum;
  // A t exactly on a boundary belongs to the quantum that starts at t.
  double idx = std::floor(offset + 1e-9);
  return lease_start_ + (idx + 1.0) * pricing_.quantum;
}

}  // namespace dfim
