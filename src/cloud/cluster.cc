#include "cloud/cluster.h"

#include <algorithm>

namespace dfim {

Cluster::Cluster(ContainerSpec spec, PricingModel pricing, int max_containers)
    : spec_(spec), pricing_(pricing), max_containers_(max_containers) {}

Result<std::vector<Container*>> Cluster::Acquire(int n, Seconds now) {
  if (n <= 0) return Status::InvalidArgument("Acquire: n must be positive");
  ReapExpired(now);
  std::vector<Container*> out;
  out.reserve(static_cast<size_t>(n));
  // Reuse alive containers first: their caches are warm and their current
  // quantum is already paid for.
  for (auto& c : alive_) {
    if (static_cast<int>(out.size()) == n) break;
    out.push_back(c.get());
  }
  while (static_cast<int>(out.size()) < n) {
    if (static_cast<int>(alive_.size()) >= max_containers_) {
      return Status::ResourceExhausted("Acquire: container limit reached");
    }
    auto c = std::make_unique<Container>(next_id_++, spec_, pricing_, now);
    total_quanta_ += c->quanta_charged();
    out.push_back(c.get());
    alive_.push_back(std::move(c));
  }
  return out;
}

void Cluster::ChargeThrough(Container* container, Seconds t) {
  total_quanta_ += container->ExtendLeaseTo(t);
}

int Cluster::ReapExpired(Seconds now) {
  int before = static_cast<int>(alive_.size());
  alive_.erase(std::remove_if(alive_.begin(), alive_.end(),
                              [now](const std::unique_ptr<Container>& c) {
                                return !c->AliveAt(now);
                              }),
               alive_.end());
  return before - static_cast<int>(alive_.size());
}

int Cluster::AliveCount(Seconds now) const {
  int n = 0;
  for (const auto& c : alive_) {
    if (c->AliveAt(now)) ++n;
  }
  return n;
}

}  // namespace dfim
