#include "cloud/cluster.h"

#include <algorithm>

namespace dfim {

Cluster::Cluster(ContainerSpec spec, PricingModel pricing, int max_containers)
    : spec_(spec), pricing_(pricing), max_containers_(max_containers) {}

void Cluster::SetFaultModel(const FaultModel* model,
                            int64_t preempt_max_quanta) {
  faults_ = model;
  preempt_max_quanta_ = preempt_max_quanta;
  preempt_notice_ = model != nullptr ? model->options().preempt_notice : 0;
}

Container* Cluster::AllocateFresh(Seconds now) {
  auto c = std::make_unique<Container>(next_id_++, spec_, pricing_, now);
  if (faults_ != nullptr) {
    Seconds boot = faults_->BootDelay(static_cast<uint64_t>(c->id()));
    if (boot > 0) c->set_usable_at(now + boot);
    Seconds reclaim = faults_->PreemptOnset(static_cast<uint64_t>(c->id()),
                                            pricing_.quantum,
                                            preempt_max_quanta_);
    if (reclaim < kNeverFails) c->set_preempt_at(now + reclaim);
  }
  total_quanta_ += c->quanta_charged();
  ++ledger_.granted;
  Container* raw = c.get();
  alive_.push_back(std::move(c));
  return raw;
}

Result<std::vector<Container*>> Cluster::Acquire(int n, Seconds now) {
  if (n <= 0) return Status::InvalidArgument("Acquire: n must be positive");
  ReapExpired(now);
  std::vector<Container*> out;
  out.reserve(static_cast<size_t>(n));
  // Reuse alive containers first: their caches are warm and their current
  // quantum is already paid for.
  for (auto& c : alive_) {
    if (static_cast<int>(out.size()) == n) break;
    out.push_back(c.get());
  }
  while (static_cast<int>(out.size()) < n) {
    ++ledger_.acquire_requests;
    if (static_cast<int>(alive_.size()) >= max_containers_) {
      ++ledger_.denied_capacity;
      return Status::ResourceExhausted("Acquire: container limit reached");
    }
    out.push_back(AllocateFresh(now));
  }
  return out;
}

bool Cluster::UsableForNewWork(const Container& c, Seconds now) const {
  if (!c.UsableAt(now)) return false;
  // Inside the reclaim-notice window the container only drains: running
  // work may finish, but no new work starts on a doomed VM.
  return now < c.preempt_at() - preempt_notice_ - 1e-9;
}

AcquireOutcome Cluster::AcquireUsable(int n, Seconds now) {
  AcquireOutcome out;
  if (n <= 0) return out;
  ReapExpired(now);
  for (auto& c : alive_) {
    if (UsableForNewWork(*c, now)) {
      if (static_cast<int>(out.usable.size()) < n) out.usable.push_back(c.get());
    } else if (c->AliveAt(now) && now < c->usable_at() - 1e-9) {
      ++out.booting;
    }
  }
  int covered = static_cast<int>(out.usable.size()) + out.booting;
  for (int shortfall = n - covered; shortfall > 0; --shortfall) {
    if (static_cast<int>(alive_.size()) >= max_containers_) {
      ++ledger_.acquire_requests;
      ++ledger_.denied_capacity;
      ++out.denied_capacity;
      continue;
    }
    // The very first container of an empty fleet is exempt from the quota
    // draw: the injected throttle models the provider slowing *scale-out*,
    // never refusing the service its first VM.
    bool exempt = alive_.empty();
    uint64_t request_index = static_cast<uint64_t>(ledger_.acquire_requests);
    ++ledger_.acquire_requests;
    if (!exempt && faults_ != nullptr && faults_->AcquireDenied(request_index)) {
      ++ledger_.denied_quota;
      ++out.denied_quota;
      continue;
    }
    Container* fresh = AllocateFresh(now);
    if (UsableForNewWork(*fresh, now)) {
      out.usable.push_back(fresh);
    } else {
      // Paid for but still booting (or already doomed): in-flight coverage.
      ++out.booting;
    }
  }
  return out;
}

int Cluster::DrainIdleAbove(int target, Seconds now) {
  if (target < 0) target = 0;
  int released = 0;
  while (static_cast<int>(alive_.size()) > target) {
    // Release the container whose lease renews soonest: it is the one about
    // to charge another idle quantum.
    size_t victim = 0;
    for (size_t i = 1; i < alive_.size(); ++i) {
      if (alive_[i]->lease_end() < alive_[victim]->lease_end()) victim = i;
    }
    (void)now;
    alive_.erase(alive_.begin() + static_cast<ptrdiff_t>(victim));
    ++ledger_.released_idle;
    ++ledger_.drained;
    ++released;
  }
  return released;
}

void Cluster::RemoveFailed(const Container* container, bool preempted) {
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i].get() == container) {
      alive_.erase(alive_.begin() + static_cast<ptrdiff_t>(i));
      if (preempted) {
        ++ledger_.preempted;
      } else {
        ++ledger_.crashed;
      }
      return;
    }
  }
}

void Cluster::ChargeThrough(Container* container, Seconds t) {
  total_quanta_ += container->ExtendLeaseTo(t);
}

void Cluster::KeepAlive(Seconds now) {
  for (auto& c : alive_) {
    if (c->preempt_at() <= now + 1e-9) continue;
    total_quanta_ += c->ExtendLeaseTo(now);
  }
}

int Cluster::ReapExpired(Seconds now) {
  int before = static_cast<int>(alive_.size());
  alive_.erase(
      std::remove_if(alive_.begin(), alive_.end(),
                     [this, now](const std::unique_ptr<Container>& c) {
                       // A reclaim that struck before the lease end takes the
                       // container even if the lease itself is still paid.
                       if (c->preempt_at() <= now + 1e-9 &&
                           c->preempt_at() < c->lease_end() - 1e-9) {
                         ++ledger_.preempted;
                         return true;
                       }
                       if (!c->AliveAt(now)) {
                         ++ledger_.released_idle;
                         return true;
                       }
                       return false;
                     }),
      alive_.end());
  return before - static_cast<int>(alive_.size());
}

int Cluster::AliveCount(Seconds now) const {
  int n = 0;
  for (const auto& c : alive_) {
    if (c->AliveAt(now)) ++n;
  }
  return n;
}

int Cluster::UsableCount(Seconds now) const {
  int n = 0;
  for (const auto& c : alive_) {
    if (UsableForNewWork(*c, now)) ++n;
  }
  return n;
}

Cluster::State Cluster::SaveState() const {
  State s;
  s.next_id = next_id_;
  s.total_quanta = total_quanta_;
  s.ledger = ledger_;
  s.containers.reserve(alive_.size());
  for (const auto& c : alive_) s.containers.push_back(*c);
  return s;
}

void Cluster::RestoreState(const State& s) {
  next_id_ = s.next_id;
  total_quanta_ = s.total_quanta;
  ledger_ = s.ledger;
  alive_.clear();
  alive_.reserve(s.containers.size());
  for (const auto& c : s.containers) {
    alive_.push_back(std::make_unique<Container>(c));
  }
}

Seconds Cluster::NextUsableAt(Seconds now) const {
  Seconds next = kNeverFails;
  for (const auto& c : alive_) {
    if (!c->AliveAt(now) || now >= c->usable_at() - 1e-9) continue;
    // Only count boots that land outside the reclaim-notice window: a
    // container doomed before it finishes booting never becomes usable.
    if (c->usable_at() >= c->preempt_at() - preempt_notice_ - 1e-9) continue;
    next = std::min(next, c->usable_at());
  }
  return next;
}

}  // namespace dfim
