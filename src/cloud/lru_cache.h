#ifndef DFIM_CLOUD_LRU_CACHE_H_
#define DFIM_CLOUD_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace dfim {

/// \brief Size-bounded LRU set of named items (container local-disk cache).
///
/// Each container caches table/index partitions it has read from the storage
/// service (paper §6.1: "each container has a local disk to cache input
/// files... If the container cache gets full, LRU policy is used"). Only
/// names and sizes are tracked — the simulator never materializes bytes.
class LruCache {
 public:
  /// \param capacity total cache capacity in MB (items beyond it evict LRU).
  explicit LruCache(MegaBytes capacity) : capacity_(capacity) {}

  /// Deep copy: the key→iterator map is rebuilt against the copied list —
  /// the implicitly-generated copy would leave the new map's iterators
  /// pointing into the *source* object's list. Copies are what the
  /// execution simulator's speculation shadow pass snapshots.
  LruCache(const LruCache& other);
  LruCache& operator=(const LruCache& other);
  LruCache(LruCache&&) = default;
  LruCache& operator=(LruCache&&) = default;

  /// \brief Inserts (or refreshes) `key` with the given size.
  ///
  /// Items larger than the whole capacity are not cached. Returns the list
  /// of evicted keys so callers can trace cache churn.
  std::vector<std::string> Put(const std::string& key, MegaBytes size);

  /// True and refreshes recency when present.
  bool Touch(const std::string& key);

  /// Present without refreshing recency.
  bool Contains(const std::string& key) const;

  /// Removes `key` if present (e.g. invalidated partition version).
  void Erase(const std::string& key);

  /// Drops everything (container deleted -> local disk lost).
  void Clear();

  MegaBytes used() const { return used_; }
  MegaBytes capacity() const { return capacity_; }
  size_t item_count() const { return map_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    MegaBytes size;
  };

  MegaBytes capacity_;
  MegaBytes used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_LRU_CACHE_H_
