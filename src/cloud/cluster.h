#ifndef DFIM_CLOUD_CLUSTER_H_
#define DFIM_CLOUD_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/container.h"
#include "cloud/fault_model.h"
#include "cloud/pricing.h"
#include "common/result.h"
#include "common/units.h"

namespace dfim {

/// \brief Zero-slack lifecycle ledger of one fleet (DESIGN.md §13).
///
/// Every acquire request and every container exit is counted exactly once,
/// so two identities must hold at all times:
///
///   acquire_requests == granted + denied_capacity + denied_quota
///   granted == released_idle + preempted + crashed + alive-right-now
///
/// `drained` is the subset of `released_idle` that the autoscaler released
/// deliberately (as opposed to leases that expired idle on their own).
struct FleetLedger {
  /// Fresh-container requests made against the provider (reuse is free and
  /// is not a request).
  int64_t acquire_requests = 0;
  /// Requests the provider granted (one fresh container each).
  int64_t granted = 0;
  /// Requests denied by the fleet-size cap (`max_containers`).
  int64_t denied_capacity = 0;
  /// Requests denied by the injected provider quota throttle.
  int64_t denied_quota = 0;
  /// Containers whose lease ended while idle (reaped or drained).
  int64_t released_idle = 0;
  /// Containers the provider reclaimed (spot preemption).
  int64_t preempted = 0;
  /// Containers that crashed mid-execution.
  int64_t crashed = 0;
  /// Subset of `released_idle` released deliberately by the autoscaler.
  int64_t drained = 0;

  /// Slack of the request identity; zero when the ledger is exact.
  int64_t RequestSlack() const {
    return acquire_requests - granted - denied_capacity - denied_quota;
  }
  /// Slack of the grant identity given the current alive count.
  int64_t GrantSlack(int64_t alive_now) const {
    return granted - released_idle - preempted - crashed - alive_now;
  }
};

/// \brief One best-effort elastic acquisition (see Cluster::AcquireUsable).
struct AcquireOutcome {
  /// Containers usable right now, alive-order; may be fewer than asked.
  std::vector<Container*> usable;
  /// Alive containers still booting (in-flight capacity already paid for).
  int booting = 0;
  /// Fresh allocations denied this call by the provider quota throttle.
  int denied_quota = 0;
  /// Fresh allocations denied this call by the fleet-size cap.
  int denied_capacity = 0;
};

/// \brief Elastic pool of homogeneous containers with money accounting.
///
/// The QaaS service acquires containers per dataflow, reusing alive ones
/// (whose pre-paid quantum has not yet expired — their cache survives) and
/// allocating fresh ones up to `max_containers`. Idle containers are reaped
/// at the end of their leased quantum (paper §3: "An idle VM is deleted when
/// its currently leased time quantum expires").
///
/// The cluster is the single fleet authority: every acquire, charge, reap,
/// drain, and failure removal goes through it and is counted in a zero-slack
/// `FleetLedger`. With no fault model attached and `max_containers` high
/// enough to never deny, `Acquire` reproduces the pre-elastic ad-hoc pool
/// bit-identically (same reap predicate, same stable reuse order, same
/// monotone fresh ids).
class Cluster {
 public:
  Cluster(ContainerSpec spec, PricingModel pricing, int max_containers);

  /// \brief Attaches the provider fault source for fresh allocations.
  ///
  /// Fresh containers get a boot delay and a pre-drawn spot-reclaim instant;
  /// `AcquireUsable` draws quota throttles per request. `preempt_max_quanta`
  /// bounds the reclaim hazard walk (use the experiment horizon). Pass
  /// nullptr to detach. Zero-rate options leave every path untouched.
  void SetFaultModel(const FaultModel* model, int64_t preempt_max_quanta);

  /// \brief Returns `n` containers usable at `now`, reusing alive ones first.
  ///
  /// Fails with ResourceExhausted when more than `max_containers` would be
  /// alive simultaneously. All-or-nothing: the legacy strict path used when
  /// the elastic machinery is off.
  Result<std::vector<Container*>> Acquire(int n, Seconds now);

  /// \brief Best-effort elastic acquisition toward a target of `n` usable.
  ///
  /// Reuses every container usable at `now` first. Alive-but-booting
  /// containers count as in-flight coverage (they were already paid for, so
  /// re-requesting would double-allocate); only the remaining shortfall
  /// becomes fresh provider requests, each subject to the capacity cap and
  /// the injected quota throttle. The first fresh allocation of an *empty*
  /// fleet is exempt from the quota draw: the model throttles scale-out, it
  /// never wedges the service at zero VMs. Never fails — callers act on the
  /// fleet they actually got.
  AcquireOutcome AcquireUsable(int n, Seconds now);

  /// \brief Drains the fleet down to `target` alive containers.
  ///
  /// Releases idle containers above the target, earliest lease end first
  /// (they are the ones about to renew idle). Call only when the fleet is
  /// quiescent — the cluster does not track per-container busyness. Returns
  /// how many were released (ledger: drained + released_idle).
  int DrainIdleAbove(int target, Seconds now);

  /// \brief Removes a container that died mid-execution.
  ///
  /// `preempted` distinguishes provider reclaims from plain crashes in the
  /// ledger. No-op if the pointer is not an alive member.
  void RemoveFailed(const Container* container, bool preempted);

  /// \brief Charges `container` through time `t` and accrues the bill.
  void ChargeThrough(Container* container, Seconds t);

  /// \brief Extends every alive container's lease through `now`.
  ///
  /// Models statically provisioned always-on VMs: idle time between uses is
  /// billed instead of letting the lease lapse (the retroactive charge
  /// covers the whole idle gap). Containers past their reclaim instant are
  /// never revived — the provider, not the tenant, owns them.
  void KeepAlive(Seconds now);

  /// \brief Deletes containers whose lease expired at or before `now`, and
  /// containers whose pre-drawn reclaim instant has passed.
  ///
  /// Their local caches are lost. Expired-idle leases count as
  /// `released_idle`; reclaims that preceded the lease end count as
  /// `preempted`. Returns how many were deleted.
  int ReapExpired(Seconds now);

  /// Containers currently alive at `now`.
  int AliveCount(Seconds now) const;

  /// Containers usable for new work at `now`: alive, booted, and not inside
  /// their preemption-notice window.
  int UsableCount(Seconds now) const;

  /// Earliest instant a currently-booting container becomes usable for new
  /// work, or kNeverFails when nothing alive is booting (or every booting
  /// container boots straight into its reclaim-notice window).
  Seconds NextUsableAt(Seconds now) const;

  /// Containers currently held (reaped or not yet); the `alive-right-now`
  /// term of the grant identity.
  int64_t HeldCount() const { return static_cast<int64_t>(alive_.size()); }

  /// Total quanta charged across all containers, ever.
  int64_t total_quanta_charged() const { return total_quanta_; }

  /// Total VM dollars accrued, ever.
  Dollars total_vm_cost() const {
    return pricing_.VmCost(total_quanta_);
  }

  /// Containers allocated over the cluster lifetime (for reuse metrics).
  int64_t total_allocated() const { return next_id_; }

  const FleetLedger& ledger() const { return ledger_; }
  int max_containers() const { return max_containers_; }
  const PricingModel& pricing() const { return pricing_; }
  const ContainerSpec& spec() const { return spec_; }

  /// \name Journaled recovery (DESIGN.md §15)
  /// The fleet is control-plane state: a crash loses the lease map and the
  /// ledger, and recovery restores both from the last snapshot. Containers
  /// are deep-copied by value (their LRU caches included); the fault-model
  /// binding is configuration and survives untouched.
  /// @{
  struct State {
    int next_id = 0;
    int64_t total_quanta = 0;
    FleetLedger ledger;
    std::vector<Container> containers;
  };

  State SaveState() const;
  void RestoreState(const State& s);
  /// @}

 private:
  /// Allocates, charges, and fault-stamps one fresh container.
  Container* AllocateFresh(Seconds now);
  /// True when new work may be placed on `c` at `now` (alive, booted, and
  /// outside the reclaim-notice window).
  bool UsableForNewWork(const Container& c, Seconds now) const;

  ContainerSpec spec_;
  PricingModel pricing_;
  int max_containers_;
  int next_id_ = 0;
  int64_t total_quanta_ = 0;
  const FaultModel* faults_ = nullptr;
  int64_t preempt_max_quanta_ = 0;
  Seconds preempt_notice_ = 0;
  FleetLedger ledger_;
  std::vector<std::unique_ptr<Container>> alive_;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_CLUSTER_H_
