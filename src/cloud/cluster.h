#ifndef DFIM_CLOUD_CLUSTER_H_
#define DFIM_CLOUD_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/container.h"
#include "cloud/pricing.h"
#include "common/result.h"
#include "common/units.h"

namespace dfim {

/// \brief Elastic pool of homogeneous containers with money accounting.
///
/// The QaaS service acquires containers per dataflow, reusing alive ones
/// (whose pre-paid quantum has not yet expired — their cache survives) and
/// allocating fresh ones up to `max_containers`. Idle containers are reaped
/// at the end of their leased quantum (paper §3: "An idle VM is deleted when
/// its currently leased time quantum expires").
class Cluster {
 public:
  Cluster(ContainerSpec spec, PricingModel pricing, int max_containers);

  /// \brief Returns `n` containers usable at `now`, reusing alive ones first.
  ///
  /// Fails with ResourceExhausted when more than `max_containers` would be
  /// alive simultaneously.
  Result<std::vector<Container*>> Acquire(int n, Seconds now);

  /// \brief Charges `container` through time `t` and accrues the bill.
  void ChargeThrough(Container* container, Seconds t);

  /// \brief Deletes containers whose lease expired at or before `now`.
  ///
  /// Their local caches are lost. Returns how many were deleted.
  int ReapExpired(Seconds now);

  /// Containers currently alive at `now`.
  int AliveCount(Seconds now) const;

  /// Total quanta charged across all containers, ever.
  int64_t total_quanta_charged() const { return total_quanta_; }

  /// Total VM dollars accrued, ever.
  Dollars total_vm_cost() const {
    return pricing_.VmCost(total_quanta_);
  }

  /// Containers allocated over the cluster lifetime (for reuse metrics).
  int64_t total_allocated() const { return next_id_; }

  const PricingModel& pricing() const { return pricing_; }
  const ContainerSpec& spec() const { return spec_; }

 private:
  ContainerSpec spec_;
  PricingModel pricing_;
  int max_containers_;
  int next_id_ = 0;
  int64_t total_quanta_ = 0;
  std::vector<std::unique_ptr<Container>> alive_;
};

}  // namespace dfim

#endif  // DFIM_CLOUD_CLUSTER_H_
