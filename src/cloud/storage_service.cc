#include "cloud/storage_service.h"

#include "common/logging.h"

namespace dfim {

void StorageService::Settle(Seconds now) {
  // Billing time never runs backwards: a regression would accrue negative
  // MB·quanta. Clamp to the last billed instant — the mutation itself still
  // applies, billed from the high-water mark. (Put/Delete legitimately
  // arrive slightly out of order when callers register a batch of objects
  // grouped by container; only AdvanceTo treats a regression as a caller
  // bug worth logging.)
  if (now <= last_billed_) {
    if (now < last_billed_) ++clock_clamps_;
    return;
  }
  double quanta = (now - last_billed_) / pricing_.quantum;
  accrued_mb_quanta_ += used_ * quanta;
  accrued_cost_ += pricing_.StorageCost(used_, quanta);
  last_billed_ = now;
}

void StorageService::Put(const std::string& path, MegaBytes size, Seconds now) {
  Settle(now);
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    used_ -= it->second;
    it->second = size;
  } else {
    objects_.emplace(path, size);
  }
  used_ += size;
}

void StorageService::Delete(const std::string& path, Seconds now) {
  Settle(now);
  auto it = objects_.find(path);
  if (it == objects_.end()) return;
  used_ -= it->second;
  objects_.erase(it);
}

bool StorageService::Exists(const std::string& path) const {
  return objects_.find(path) != objects_.end();
}

MegaBytes StorageService::SizeOf(const std::string& path) const {
  auto it = objects_.find(path);
  return it == objects_.end() ? 0 : it->second;
}

ReadOutcome StorageService::SimulateRead(Seconds base_latency,
                                         bool primary_fault,
                                         Seconds fault_latency,
                                         bool hedge_enabled,
                                         Seconds hedge_after,
                                         bool hedge_fault) {
  ReadOutcome out;
  out.primary_fault = primary_fault;
  out.latency = base_latency;
  if (primary_fault) out.latency += fault_latency;
  if (hedge_enabled && out.latency > hedge_after + 1e-9) {
    out.hedged = true;
    out.hedge_fault = hedge_fault;
    Seconds dup =
        hedge_after + base_latency + (hedge_fault ? fault_latency : 0);
    if (dup < out.latency - 1e-9) {
      out.latency = dup;
      out.hedge_won = true;
    }
  }
  return out;
}

void StorageService::AdvanceTo(Seconds now) {
  if (now < last_billed_ - 1e-9) {
    DFIM_LOG(kWarn) << "StorageService::AdvanceTo: time regression " << now
                    << " < " << last_billed_ << "; clamping";
    ++clock_clamps_;
    return;
  }
  Settle(now);
}

}  // namespace dfim
