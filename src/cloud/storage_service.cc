#include "cloud/storage_service.h"

#include <cassert>

namespace dfim {

void StorageService::Settle(Seconds now) {
  assert(now + 1e-9 >= last_billed_);
  if (now <= last_billed_) return;
  double quanta = (now - last_billed_) / pricing_.quantum;
  accrued_mb_quanta_ += used_ * quanta;
  accrued_cost_ += pricing_.StorageCost(used_, quanta);
  last_billed_ = now;
}

void StorageService::Put(const std::string& path, MegaBytes size, Seconds now) {
  Settle(now);
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    used_ -= it->second;
    it->second = size;
  } else {
    objects_.emplace(path, size);
  }
  used_ += size;
}

void StorageService::Delete(const std::string& path, Seconds now) {
  Settle(now);
  auto it = objects_.find(path);
  if (it == objects_.end()) return;
  used_ -= it->second;
  objects_.erase(it);
}

bool StorageService::Exists(const std::string& path) const {
  return objects_.find(path) != objects_.end();
}

MegaBytes StorageService::SizeOf(const std::string& path) const {
  auto it = objects_.find(path);
  return it == objects_.end() ? 0 : it->second;
}

void StorageService::AdvanceTo(Seconds now) { Settle(now); }

}  // namespace dfim
