#include "cloud/storage_service.h"

#include "common/logging.h"

namespace dfim {

void StorageService::Settle(Seconds now) {
  // Billing time never runs backwards: a regression would accrue negative
  // MB·quanta. Clamp to the last billed instant — the mutation itself still
  // applies, billed from the high-water mark. (Put/Delete legitimately
  // arrive slightly out of order when callers register a batch of objects
  // grouped by container; only AdvanceTo treats a regression as a caller
  // bug worth logging.)
  if (now <= last_billed_) {
    if (now < last_billed_) ++clock_clamps_;
  } else {
    double quanta = (now - last_billed_) / pricing_.quantum;
    accrued_mb_quanta_ += used_ * quanta;
    accrued_cost_ += pricing_.StorageCost(used_, quanta);
    last_billed_ = now;
  }
  if (!rot_queue_.empty()) RealizeRotUpTo(last_billed_);
}

void StorageService::RealizeRotUpTo(Seconds now) {
  while (!rot_queue_.empty() && rot_queue_.top().at <= now) {
    const RotEvent& ev = rot_queue_.top();
    auto it = objects_.find(ev.path);
    // Stale events (object deleted or overwritten since the stamp) are
    // dropped: the generation the rot was drawn for no longer exists.
    if (it != objects_.end() && it->second.generation == ev.generation &&
        !it->second.corrupt) {
      it->second.corrupt = true;
      ++corruptions_injected_;
    }
    rot_queue_.pop();
  }
}

int64_t StorageService::Put(const std::string& path, MegaBytes size,
                            Seconds now, const PutStamp& stamp) {
  Settle(now);
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    // Idempotent replay: the same logical write already landed (hedged
    // persist double-landing). Nothing changes — same generation, same
    // content, same stamps.
    if (stamp.token != 0 && stamp.token == it->second.token) {
      return it->second.generation;
    }
    // A corrupt object overwritten before any verification saw it is
    // provably dead: no verified reader was ever served its bytes.
    if (it->second.corrupt && !it->second.detected) ++corruptions_dead_;
    used_ -= it->second.size;
    StoredObject& obj = it->second;
    obj.size = size;
    ++obj.generation;
    obj.token = stamp.token;
    obj.corrupt = stamp.torn;
    obj.detected = false;
    obj.rot_at = stamp.rot_at;
  } else {
    StoredObject obj;
    obj.size = size;
    obj.generation = 1;
    obj.token = stamp.token;
    obj.corrupt = stamp.torn;
    obj.rot_at = stamp.rot_at;
    it = objects_.emplace(path, obj).first;
  }
  used_ += size;
  if (stamp.torn) ++corruptions_injected_;
  if (stamp.rot_at < kNeverFails) {
    rot_queue_.push(RotEvent{stamp.rot_at, it->second.generation, path});
  }
  return it->second.generation;
}

void StorageService::Delete(const std::string& path, Seconds now) {
  Settle(now);
  auto it = objects_.find(path);
  if (it == objects_.end()) return;
  if (it->second.corrupt && !it->second.detected) ++corruptions_dead_;
  used_ -= it->second.size;
  objects_.erase(it);
}

bool StorageService::Exists(const std::string& path) const {
  return objects_.find(path) != objects_.end();
}

MegaBytes StorageService::SizeOf(const std::string& path) const {
  auto it = objects_.find(path);
  return it == objects_.end() ? 0 : it->second.size;
}

int64_t StorageService::Generation(const std::string& path) const {
  auto it = objects_.find(path);
  return it == objects_.end() ? 0 : it->second.generation;
}

VerifyResult StorageService::VerifyRead(const std::string& path, Seconds now) {
  // Realize any rot due by the read instant first — a verification is a
  // read, and it sees the object as it is *now*.
  Settle(now);
  auto it = objects_.find(path);
  if (it == objects_.end()) return VerifyResult::kMissing;
  if (!it->second.corrupt) return VerifyResult::kClean;
  if (it->second.detected) return VerifyResult::kAlreadyDetected;
  it->second.detected = true;
  ++corruptions_detected_;
  if (record_detections_) {
    detection_log_.push_back(
        Detection{++detection_seq_, it->second.generation, path});
  }
  return VerifyResult::kCorrupt;
}

int64_t StorageService::RewindDetectionsTo(int64_t seq) {
  int64_t rewound = 0;
  while (!detection_log_.empty() && detection_log_.back().seq > seq) {
    const Detection& d = detection_log_.back();
    auto it = objects_.find(d.path);
    // Generation-guarded: an overwrite since the detection replaced the
    // object — its detected flag belongs to the new write, leave it alone.
    if (it != objects_.end() && it->second.generation == d.generation &&
        it->second.detected) {
      it->second.detected = false;
      --corruptions_detected_;
      ++rewound;
    }
    detection_log_.pop_back();
  }
  detection_seq_ = seq;
  return rewound;
}

bool StorageService::TokenMatches(const std::string& path,
                                  uint64_t token) const {
  if (token == 0) return false;
  auto it = objects_.find(path);
  return it != objects_.end() && it->second.token == token;
}

int64_t StorageService::LatentCorrupt(Seconds now) {
  Settle(now);
  int64_t n = 0;
  for (const auto& [path, obj] : objects_) {
    if (obj.corrupt && !obj.detected) ++n;
  }
  return n;
}

ReadOutcome StorageService::SimulateRead(Seconds base_latency,
                                         bool primary_fault,
                                         Seconds fault_latency,
                                         bool hedge_enabled,
                                         Seconds hedge_after,
                                         bool hedge_fault) {
  ReadOutcome out;
  out.primary_fault = primary_fault;
  out.latency = base_latency;
  if (primary_fault) out.latency += fault_latency;
  if (hedge_enabled && out.latency > hedge_after + 1e-9) {
    out.hedged = true;
    out.hedge_fault = hedge_fault;
    Seconds dup =
        hedge_after + base_latency + (hedge_fault ? fault_latency : 0);
    if (dup < out.latency - 1e-9) {
      out.latency = dup;
      out.hedge_won = true;
    }
  }
  return out;
}

void StorageService::AdvanceTo(Seconds now) {
  if (now < last_billed_ - 1e-9) {
    DFIM_LOG(kWarn) << "StorageService::AdvanceTo: time regression " << now
                    << " < " << last_billed_ << "; clamping";
    ++clock_clamps_;
    return;
  }
  Settle(now);
}

}  // namespace dfim
