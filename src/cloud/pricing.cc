#include "cloud/pricing.h"

namespace dfim {

PricingModel PricingModel::FromMonthlyStoragePrice(Dollars per_gb_per_month,
                                                   Seconds quantum,
                                                   Dollars vm_price_per_quantum) {
  PricingModel m;
  m.quantum = quantum;
  m.vm_price_per_quantum = vm_price_per_quantum;
  // Paper: Mst = (MC * 12 * Q) / (365.25 * 24 * 60), Q in minutes, MC per GB.
  double q_minutes = quantum / 60.0;
  double per_gb = per_gb_per_month * 12.0 * q_minutes / (365.25 * 24.0 * 60.0);
  m.storage_price_per_mb_per_quantum = per_gb / 1024.0;
  return m;
}

}  // namespace dfim
