#include "cloud/lru_cache.h"

#include <vector>

namespace dfim {

LruCache::LruCache(const LruCache& other)
    : capacity_(other.capacity_),
      used_(other.used_),
      lru_(other.lru_),
      hits_(other.hits_),
      misses_(other.misses_) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) map_[it->key] = it;
}

LruCache& LruCache::operator=(const LruCache& other) {
  if (this == &other) return *this;
  capacity_ = other.capacity_;
  used_ = other.used_;
  lru_ = other.lru_;
  hits_ = other.hits_;
  misses_ = other.misses_;
  map_.clear();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) map_[it->key] = it;
  return *this;
}

std::vector<std::string> LruCache::Put(const std::string& key, MegaBytes size) {
  std::vector<std::string> evicted;
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_ -= it->second->size;
    lru_.erase(it->second);
    map_.erase(it);
  }
  if (size > capacity_) return evicted;  // does not fit at all
  while (used_ + size > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    used_ -= victim.size;
    evicted.push_back(victim.key);
    map_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, size});
  map_[key] = lru_.begin();
  used_ += size;
  return evicted;
}

bool LruCache::Touch(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool LruCache::Contains(const std::string& key) const {
  return map_.find(key) != map_.end();
}

void LruCache::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  used_ -= it->second->size;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::Clear() {
  lru_.clear();
  map_.clear();
  used_ = 0;
}

}  // namespace dfim
