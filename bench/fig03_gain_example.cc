// Reproduces Table 2 + Figure 3: the gain over time of two indexes A
// (100 MB) and B (500 MB) used by four dataflows, with alpha = 0.5 and
// D = 60 (the paper's illustrative example in §4).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/gain.h"

namespace dfim {
namespace {

struct Use {
  double t;
  double gtd;
  double gmd;
};

// Table 2: dataflows issued at t = 10, 30, 50, 100 and their per-index gains.
const std::vector<Use> kUsesA = {{50, 2.0, 8.0}, {100, 3.0, 5.0}};
const std::vector<Use> kUsesB = {{10, 1.0, 3.0}, {30, 2.0, 5.0}, {50, 3.0, 8.0}};

double GainAt(const GainModel& model, const std::vector<Use>& uses, double now,
              double build_quanta, MegaBytes size_mb) {
  std::vector<GainContribution> contribs;
  for (const auto& u : uses) {
    if (u.t <= now) contribs.push_back({u.gtd, u.gmd, now - u.t});
  }
  return model.Evaluate(contribs, build_quanta, build_quanta, size_mb).g;
}

bool BeneficialAt(const GainModel& model, const std::vector<Use>& uses,
                  double now, double build_quanta, MegaBytes size_mb) {
  std::vector<GainContribution> contribs;
  for (const auto& u : uses) {
    if (u.t <= now) contribs.push_back({u.gtd, u.gmd, now - u.t});
  }
  return model.Evaluate(contribs, build_quanta, build_quanta, size_mb)
      .beneficial;
}

}  // namespace
}  // namespace dfim

int main() {
  using namespace dfim;
  bench::Header(
      "Figure 3 / Table 2 -- gain over time of indexes A (100 MB) and "
      "B (500 MB), alpha=0.5, D=60");

  GainOptions go;
  go.alpha = 0.5;
  go.fade_d_quanta = 60.0;
  go.storage_window_quanta = 2.0;
  GainModel model(go, PricingModel{});

  std::printf("\nTable 2 (dataflows and their index gains):\n");
  std::printf("  d1(t=10):  gtd(B)=1.0 gmd(B)=3.0\n");
  std::printf("  d2(t=30):  gtd(B)=2.0 gmd(B)=5.0\n");
  std::printf("  d3(t=50):  gtd(A)=2.0 gmd(A)=8.0, gtd(B)=3.0 gmd(B)=8.0\n");
  std::printf("  d4(t=100): gtd(A)=3.0 gmd(A)=5.0\n");

  const double kBuild = 1.4;  // illustrative ti = mi (quanta)
  std::printf("\n%6s %12s %12s %6s %6s\n", "t", "gain(A)", "gain(B)", "A?",
              "B?");
  double b_on = -1, b_off = -1;
  for (int t = 0; t <= 160; t += 5) {
    double ga = GainAt(model, kUsesA, t, kBuild, 100.0);
    double gb = GainAt(model, kUsesB, t, kBuild, 500.0);
    bool ba = BeneficialAt(model, kUsesA, t, kBuild, 100.0);
    bool bb = BeneficialAt(model, kUsesB, t, kBuild, 500.0);
    if (bb && b_on < 0) b_on = t;
    if (!bb && b_on >= 0 && b_off < 0 && t > b_on) b_off = t;
    std::printf("%6d %12.4f %12.4f %6s %6s\n", t, ga, gb, ba ? "yes" : "-",
                bb ? "yes" : "-");
  }
  std::printf(
      "\nIndex B beneficial window: [%g, %g]  (paper: becomes beneficial at "
      "~30, deleted at ~125)\n",
      b_on, b_off);
  return 0;
}
