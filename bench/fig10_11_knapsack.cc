// Reproduces Figures 10 and 11: the histogram instance of build-index
// operator times and idle-time segments (Fig. 10), and the total gain
// achieved by the Graham-style greedy, the LP interleaving algorithm and
// the merged-slot upper bound on that instance (Fig. 11; the paper finds LP
// within ~5% of the bound and above Graham).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/knapsack.h"
#include "dataflow/build_index_ops.h"

int main() {
  using namespace dfim;
  bench::Header("Figures 10 & 11 -- packing build ops into idle slots");

  // The Fig. 10 instance: 8 idle segments up to ~0.6 quanta and ~22 build
  // ops of 0.02-0.17 quanta, as read off the paper's histograms.
  std::vector<double> slots = {0.55, 0.45, 0.35, 0.30, 0.22, 0.15, 0.10, 0.05};
  std::vector<KnapsackItem> items;
  Rng rng(5);
  for (int i = 0; i < 22; ++i) {
    double size = rng.Uniform(0.02, 0.17);
    // §6.4: "we set the gain of each operator to be equal to its execution
    // time".
    items.push_back({i, size, size});
  }

  std::printf("\nFig. 10a -- idle time segments (quanta):\n");
  Histogram hslots(0, 0.6, 6);
  for (double s : slots) hslots.Add(s);
  std::printf("%s", hslots.ToAscii(30).c_str());

  std::printf("\nFig. 10b -- build index operator times (quanta):\n");
  Histogram hops(0, 0.2, 8);
  for (const auto& it : items) hops.Add(it.size);
  std::printf("%s", hops.ToAscii(30).c_str());

  MultiSlotPacking graham = PackSlotsGraham(items, slots);
  MultiSlotPacking lp = PackSlotsLp(items, slots);
  double upper = PackSlotsUpperBound(items, slots);

  std::printf("\nFig. 11 -- total gain by algorithm:\n");
  std::printf("%-14s %12s %16s\n", "Algorithm", "Total gain",
              "% of upper bound");
  std::printf("%-14s %12.4f %15.1f%%\n", "Graham", graham.total_gain,
              100.0 * graham.total_gain / upper);
  std::printf("%-14s %12.4f %15.1f%%\n", "Linear Prog.", lp.total_gain,
              100.0 * lp.total_gain / upper);
  std::printf("%-14s %12.4f %15.1f%%\n", "Upper Bound", upper, 100.0);
  bench::Note("Paper shape: LP within ~5% of the merged-slot upper bound and "
              "above the Graham baseline.");
  return 0;
}
