// Reproduces Figure 14: the dynamic workload experiment with the random
// dataflow generator (uniform application mix). Indexes rarely become
// non-beneficial here, so the cost gap between Gain and Gain(no delete)
// shrinks compared with the phase workload.

#include <cstdio>

#include "service_experiment.h"

int main() {
  using namespace dfim;
  bench::Header("Figure 14 -- random dataflow workload");

  Seconds horizon = (bench::FastMode() ? 180.0 : 720.0) * 60.0;
  std::printf("\nHorizon: %.0f quanta; uniformly random application mix; "
              "Poisson arrivals (lambda = 1 quantum).\n", horizon / 60.0);

  auto make_client = [](DataflowGenerator* gen) {
    return std::make_unique<RandomWorkloadClient>(gen, 60.0, 37);
  };
  auto results = bench::RunAllPolicies(horizon, 37, make_client);

  std::printf("\nFig. 14 -- dataflows finished & cost per dataflow (random):");
  bench::PrintFinishedAndCost(results);
  bench::Note("Paper shape: Gain still finishes the most dataflows; the cost"
              " reduction is smaller than under the phase workload because "
              "indexes stay useful (and stored) longer.");
  return 0;
}
