// Reproduces Table 6: the speedup an orderkey index offers the paper's four
// calibration queries, measured on a real B+Tree vs full heap scans over
// generated TPC-H lineitem rows.

#include <cstdio>

#include "bench_util.h"
#include "tpch/lineitem.h"
#include "tpch/queries.h"

int main() {
  using namespace dfim;
  bench::Header("Table 6 -- index speedup on the calibration queries");

  // The paper uses scale 2 (12M rows). Wall-clock here scales linearly; the
  // default keeps the binary fast while preserving selectivity ratios.
  double scale = bench::FastMode() ? 0.01 : 0.2;
  tpch::LineitemGenerator gen(scale, 42);
  TableHeap<tpch::LineitemRow> heap;
  int64_t rows = gen.Generate(&heap);
  std::printf("\nGenerated lineitem at scale %.2f: %lld rows\n", scale,
              static_cast<long long>(rows));
  auto tree = tpch::BuildOrderkeyIndex(heap);
  tpch::QueryConstants qc = tpch::QueryConstants::ForMaxKey(gen.MaxOrderKey());
  tpch::CalibrationQueries queries(&heap, &tree, qc);

  struct PaperRow {
    const char* name;
    double no_index;
    double with_index;
    double speedup;
  };
  const PaperRow kPaper[] = {
      {"Order by", 44.730, 6.010, 7.44},
      {"Select range (large)", 5.103, 0.054, 94.44},
      {"Select range (small)", 4.921, 0.016, 307.50},
      {"Lookup", 4.393, 0.007, 627.14},
  };

  auto timings = queries.RunAll();
  std::printf("\n%-22s %12s %12s %10s   %s\n", "Query", "No-Index(s)",
              "Index(s)", "Speedup", "(paper: no-idx / idx / speedup)");
  for (size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    std::printf("%-22s %12.4f %12.6f %9.1fx   (%.3f / %.3f / %.2fx)\n",
                t.name.c_str(), t.no_index_sec, t.index_sec, t.Speedup(),
                kPaper[i].no_index, kPaper[i].with_index, kPaper[i].speedup);
  }
  std::printf(
      "\nShape check: lookup > small range > large range > order-by "
      "speedups, as in the paper.\n");
  return 0;
}
