// Reproduces Table 6: the speedup an orderkey index offers the paper's four
// calibration queries, measured on a real B+Tree vs full heap scans over
// generated TPC-H lineitem rows.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "index/bplus_tree_ref.h"
#include "tpch/lineitem.h"
#include "tpch/queries.h"

namespace {

/// Min-of-reps wall time for one index-side plan (they run in microseconds,
/// so a single shot is noise).
template <typename Fn>
double TimePlan(Fn&& fn, int reps = 5) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

volatile int64_t g_sink = 0;

}  // namespace

int main() {
  using namespace dfim;
  bench::Header("Table 6 -- index speedup on the calibration queries");

  // The paper uses scale 2 (12M rows). Wall-clock here scales linearly; the
  // default keeps the binary fast while preserving selectivity ratios.
  double scale = bench::FastMode() ? 0.01 : 0.2;
  tpch::LineitemGenerator gen(scale, 42);
  TableHeap<tpch::LineitemRow> heap;
  int64_t rows = gen.Generate(&heap);
  std::printf("\nGenerated lineitem at scale %.2f: %lld rows\n", scale,
              static_cast<long long>(rows));
  auto tree = tpch::BuildOrderkeyIndex(heap);
  tpch::QueryConstants qc = tpch::QueryConstants::ForMaxKey(gen.MaxOrderKey());
  tpch::CalibrationQueries queries(&heap, &tree, qc);

  struct PaperRow {
    const char* name;
    double no_index;
    double with_index;
    double speedup;
  };
  const PaperRow kPaper[] = {
      {"Order by", 44.730, 6.010, 7.44},
      {"Select range (large)", 5.103, 0.054, 94.44},
      {"Select range (small)", 4.921, 0.016, 307.50},
      {"Lookup", 4.393, 0.007, 627.14},
  };

  auto timings = queries.RunAll();
  std::printf("\n%-22s %12s %12s %10s   %s\n", "Query", "No-Index(s)",
              "Index(s)", "Speedup", "(paper: no-idx / idx / speedup)");
  for (size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    std::printf("%-22s %12.4f %12.6f %9.1fx   (%.3f / %.3f / %.2fx)\n",
                t.name.c_str(), t.no_index_sec, t.index_sec, t.Speedup(),
                kPaper[i].no_index, kPaper[i].with_index, kPaper[i].speedup);
  }
  std::printf(
      "\nShape check: lookup > small range > large range > order-by "
      "speedups, as in the paper.\n");

  // Index-side re-measurement on both layouts: the same four plans against
  // the arena/SoA tree (what CalibrationQueries feeds the IndexModel / gain
  // calibration above) and the retained pointer-chasing layout. This is the
  // Table 6 index column only — the no-index scans are layout-independent.
  BPlusTreeRef<int32_t>::Options ref_opts;
  ref_opts.key_bytes = 4;
  BPlusTreeRef<int32_t> ref(ref_opts);
  {
    std::vector<BPlusTreeRef<int32_t>::Entry> entries;
    entries.reserve(heap.size());
    heap.Scan([&entries](RowId id, const tpch::LineitemRow& row) {
      entries.push_back({row.orderkey, id});
    });
    std::sort(entries.begin(), entries.end());
    ref.BulkLoad(entries);
  }
  struct Plan {
    const char* name;
    double ref_sec;
    double arena_sec;
  };
  Plan plans[4];
  plans[0].name = "Order by";
  plans[0].ref_sec = TimePlan([&ref] {
    int64_t sum = 0;
    ref.ScanAll([&sum](const int32_t& key, RowId) { sum += key; });
    g_sink = g_sink + sum;
  });
  plans[0].arena_sec = TimePlan([&tree] {
    int64_t sum = 0;
    tree.ScanAll([&sum](const int32_t& key, RowId) { sum += key; });
    g_sink = g_sink + sum;
  });
  const struct {
    const char* name;
    int32_t lo, hi;
  } kRanges[] = {{"Select range (large)", qc.range_large_lo, qc.range_large_hi},
                 {"Select range (small)", qc.range_small_lo,
                  qc.range_small_hi}};
  for (int i = 0; i < 2; ++i) {
    plans[i + 1].name = kRanges[i].name;
    int32_t lo = kRanges[i].lo + 1, hi = kRanges[i].hi - 1;
    plans[i + 1].ref_sec = TimePlan([&ref, lo, hi] {
      int64_t sum = 0;
      ref.ScanRange(lo, hi, [&sum](const int32_t& key, RowId) { sum += key; });
      g_sink = g_sink + sum;
    });
    plans[i + 1].arena_sec = TimePlan([&tree, lo, hi] {
      int64_t sum = 0;
      tree.ScanRange(lo, hi, [&sum](const int32_t& key, RowId) { sum += key; });
      g_sink = g_sink + sum;
    });
  }
  plans[3].name = "Lookup";
  plans[3].ref_sec = TimePlan([&ref, &qc] {
    g_sink = g_sink + static_cast<int64_t>(ref.Lookup(qc.lookup_key).size());
  });
  plans[3].arena_sec = TimePlan([&tree, &qc] {
    int64_t count = 0;
    tree.Lookup(qc.lookup_key, [&count](const int32_t&, RowId) { ++count; });
    g_sink = g_sink + count;
  });
  std::printf("\nIndex-side plan time by layout (no-index scans unchanged):\n");
  std::printf("%-22s %14s %14s %10s\n", "Query", "ptr-ref (s)", "arena (s)",
              "speedup");
  for (const auto& p : plans) {
    std::printf("%-22s %14.6f %14.6f %9.2fx\n", p.name, p.ref_sec, p.arena_sec,
                p.arena_sec > 0 ? p.ref_sec / p.arena_sec : 0.0);
  }
  return 0;
}
