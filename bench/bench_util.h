#ifndef DFIM_BENCH_BENCH_UTIL_H_
#define DFIM_BENCH_BENCH_UTIL_H_

// Shared setup for the experiment-reproduction binaries. Each binary
// regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index) and prints paper-shaped rows.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/service.h"
#include "dataflow/file_database.h"
#include "dataflow/generators.h"
#include "dataflow/workload.h"

namespace dfim {
namespace bench {

/// True when DFIM_FAST=1: experiments shrink (fewer repetitions, shorter
/// horizons) so the whole bench suite runs in seconds.
inline bool FastMode() {
  const char* v = std::getenv("DFIM_FAST");
  return v != nullptr && v[0] == '1';
}

/// The paper's evaluation environment (§6.1, Table 3): the 125-file
/// database with 4 candidate indexes per file, plus a generator.
struct PaperSetup {
  Catalog catalog;
  std::unique_ptr<FileDatabase> db;
  std::unique_ptr<DataflowGenerator> generator;

  explicit PaperSetup(uint64_t seed = 7,
                      GeneratorOptions gen_opts = GeneratorOptions{}) {
    db = std::make_unique<FileDatabase>(&catalog, FileDatabaseOptions{});
    Status st = db->Populate();
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    generator = std::make_unique<DataflowGenerator>(db.get(), seed, gen_opts);
  }
};

/// Table 3 defaults for schedulers/tuner/service.
inline SchedulerOptions PaperSchedulerOptions() {
  SchedulerOptions o;
  o.max_containers = 100;
  o.quantum = 60.0;
  o.net_mb_per_sec = 125.0;
  o.skyline_cap = 4;
  return o;
}

inline ServiceOptions PaperServiceOptions(IndexPolicy policy) {
  ServiceOptions so;
  so.policy = policy;
  so.tuner.sched = PaperSchedulerOptions();
  so.tuner.gain.alpha = 0.5;           // Table 3
  so.tuner.gain.fade_d_quanta = 1.0;   // Table 3
  so.total_time = 720.0 * 60.0;        // Table 3
  so.sim.time_error = 0.1;
  so.sim.data_error = 0.1;
  return so;
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace bench
}  // namespace dfim

#endif  // DFIM_BENCH_BENCH_UTIL_H_
