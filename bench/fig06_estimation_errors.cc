// Reproduces Figure 6: sensitivity of the offline (skyline) scheduler to
// estimation errors. Operator runtimes and data sizes are perturbed by a
// random factor in [1-e, 1+e] at execution; we report the relative
// difference between the estimated schedule and its realized execution for
// time, money and fragmentation.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/tuner.h"
#include "sched/exec_simulator.h"
#include "sched/skyline_scheduler.h"

int main() {
  using namespace dfim;
  bench::Header("Figure 6 -- offline-scheduler sensitivity to estimation errors");
  auto setup = std::make_unique<bench::PaperSetup>(7);
  SchedulerOptions so = bench::PaperSchedulerOptions();
  SkylineScheduler scheduler(so);

  int reps = bench::FastMode() ? 2 : 8;
  const double errors[] = {0.0, 0.1, 0.2, 0.4, 0.8, 1.6};

  std::printf("\nCybershake, %d dataflows per point; CPU-time and data-size "
              "errors applied together.\n", reps);
  std::printf("%8s %12s %12s %16s\n", "Error", "dTime (%)", "dMoney (%)",
              "dFragment. (%)");
  for (double e : errors) {
    RunningStats dt, dm, dfr;
    for (int i = 0; i < reps; ++i) {
      Dataflow df = setup->generator->Generate(AppType::kCybershake, i, 0);
      std::vector<Seconds> durations;
      std::vector<SimOpCost> costs;
      BuildDataflowCosts(df.dag, df, setup->catalog, so.net_mb_per_sec,
                         &durations, &costs);
      auto skyline = scheduler.ScheduleDag(df.dag, durations, false);
      if (!skyline.ok() || skyline->empty()) continue;
      const Schedule& plan = skyline->front();
      SimOptions sim;
      sim.quantum = so.quantum;
      sim.net_mb_per_sec = so.net_mb_per_sec;
      sim.time_error = e;
      sim.data_error = e;
      sim.seed = 1000 + static_cast<uint64_t>(i) + static_cast<uint64_t>(e * 100);
      ExecSimulator simulator(sim);
      auto exec = simulator.Run(df.dag, plan, costs);
      if (!exec.ok()) continue;
      double est_time = plan.makespan();
      double est_money = static_cast<double>(plan.LeasedQuanta(so.quantum));
      double est_frag = plan.TotalIdle(so.quantum);
      dt.Add(100.0 * std::fabs(exec->makespan - est_time) / est_time);
      dm.Add(100.0 * std::fabs(static_cast<double>(exec->leased_quanta) -
                               est_money) / est_money);
      if (est_frag > 1.0) {
        dfr.Add(100.0 * std::fabs(exec->total_idle - est_frag) / est_frag);
      }
    }
    std::printf("%7.0f%% %12.2f %12.2f %16.2f\n", e * 100.0, dt.mean(),
                dm.mean(), dfr.mean());
  }
  bench::Note("Paper shape: robust (<~20% deviation) for errors up to ~20-40%;"
              " degrades for extreme errors.");
  return 0;
}
