#ifndef DFIM_BENCH_SERVICE_EXPERIMENT_H_
#define DFIM_BENCH_SERVICE_EXPERIMENT_H_

// Shared driver for the dynamic-workload experiments (§6.5): runs the four
// index-management policies on identical workload streams and prints the
// Fig. 12/14 bars and the Table 7 operator counts.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.h"

namespace dfim {
namespace bench {

struct PolicyResult {
  IndexPolicy policy;
  ServiceMetrics metrics;
};

/// Runs one policy on a fresh catalog/database and a fresh workload client
/// produced by `make_client` (so every policy sees the same stream).
inline PolicyResult RunPolicy(
    IndexPolicy policy, Seconds horizon, uint64_t seed,
    const std::function<std::unique_ptr<WorkloadClient>(
        DataflowGenerator*)>& make_client) {
  Catalog catalog;
  FileDatabase db(&catalog, FileDatabaseOptions{});
  Status st = db.Populate();
  if (!st.ok()) std::abort();
  DataflowGenerator gen(&db, seed);

  ServiceOptions so = PaperServiceOptions(policy);
  so.total_time = horizon;
  so.seed = seed;
  QaasService service(&catalog, so);
  auto client = make_client(&gen);
  auto metrics = service.Run(client.get());
  PolicyResult r;
  r.policy = policy;
  if (metrics.ok()) {
    r.metrics = *metrics;
  } else {
    std::fprintf(stderr, "policy %s failed: %s\n",
                 std::string(IndexPolicyToString(policy)).c_str(),
                 metrics.status().ToString().c_str());
  }
  return r;
}

inline std::vector<PolicyResult> RunAllPolicies(
    Seconds horizon, uint64_t seed,
    const std::function<std::unique_ptr<WorkloadClient>(
        DataflowGenerator*)>& make_client) {
  std::vector<PolicyResult> out;
  for (IndexPolicy p : {IndexPolicy::kNoIndex, IndexPolicy::kRandom,
                        IndexPolicy::kGainNoDelete, IndexPolicy::kGain}) {
    out.push_back(RunPolicy(p, horizon, seed, make_client));
  }
  return out;
}

/// Fig. 12/14 bars: dataflows finished and cost per dataflow.
inline void PrintFinishedAndCost(const std::vector<PolicyResult>& results) {
  PricingModel pricing;
  std::printf("\n%-18s %12s %16s %10s %10s %12s\n", "Policy", "#Dataflows",
              "Cost/Dataflow(q)", "VM(q)", "Stor(q)", "Time/DF(q)");
  for (const auto& r : results) {
    double n = std::max(1, r.metrics.dataflows_finished);
    std::printf("%-18s %12d %16.2f %10.2f %10.2f %12.2f\n",
                std::string(IndexPolicyToString(r.policy)).c_str(),
                r.metrics.dataflows_finished,
                r.metrics.AvgCostQuantaPerDataflow(pricing),
                static_cast<double>(r.metrics.total_vm_quanta) / n,
                r.metrics.storage_cost / pricing.vm_price_per_quantum / n,
                r.metrics.AvgTimeQuantaPerDataflow());
  }
}

/// Table 7: operators executed and killed.
inline void PrintOperatorCounts(const std::vector<PolicyResult>& results) {
  std::printf("\nTable 7 -- operators executed (paper: NoIndex 22402/0, "
              "Random 25649/1143 = 4.4%%, Gain 49549/1418 = 2.8%%):\n");
  std::printf("%-18s %12s %12s %12s\n", "Algorithm", "Total Ops", "Killed",
              "Percent");
  for (const auto& r : results) {
    if (r.policy == IndexPolicy::kGainNoDelete) continue;
    double pct = r.metrics.total_ops > 0
                     ? 100.0 * r.metrics.killed_ops / r.metrics.total_ops
                     : 0.0;
    std::printf("%-18s %12d %12d %11.1f%%\n",
                std::string(IndexPolicyToString(r.policy)).c_str(),
                r.metrics.total_ops, r.metrics.killed_ops, pct);
  }
}

/// Fig. 13: indexes built and storage cost over time for one policy.
inline void PrintAdaptationTimeline(const PolicyResult& r, Seconds quantum,
                                    int rows = 24) {
  std::printf("\nFig. 13 -- adaptation of '%s': indexes built and storage "
              "cost over time:\n",
              std::string(IndexPolicyToString(r.policy)).c_str());
  std::printf("%12s %14s %14s %16s\n", "t (quanta)", "#Indexes",
              "Index MB", "Storage cost ($)");
  const auto& tl = r.metrics.timeline;
  if (tl.empty()) return;
  size_t step = tl.size() > static_cast<size_t>(rows)
                    ? tl.size() / static_cast<size_t>(rows)
                    : 1;
  for (size_t i = 0; i < tl.size(); i += step) {
    std::printf("%12.1f %14d %14.1f %16.4f\n", tl[i].t / quantum,
                tl[i].indexes_built, tl[i].index_mb, tl[i].storage_cost);
  }
}

}  // namespace bench
}  // namespace dfim

#endif  // DFIM_BENCH_SERVICE_EXPERIMENT_H_
