// Overload sweep: drives the open-loop QaaS service across rising arrival
// rates (x a fault level), with admission control, deadline SLOs, brownout
// and the storage circuit breaker on, and writes BENCH_overload.json. The
// point is GRACEFUL degradation: as load grows the service sheds optional
// index builds first, then whole dataflows; goodput (finished minus
// deadline misses) never collapses below the no-index baseline; and every
// arrival stays accounted for with zero slack.
//
// An elastic-fleet sweep rides along: bursty MMPP arrivals against a
// pinned fleet and a pressure-driven autoscaled fleet through the same
// fleet authority, at equal-or-less dollar spend. Both fleet ledgers must
// balance to zero slack, the elastic arm must win p99 queue delay or
// goodput without outspending the pinned fleet, and a spot-preemption arm
// must degrade gracefully (builds shed before dataflows fail).
//
// Usage: bench_overload [output.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sharded_service.h"

namespace dfim {
namespace {

struct Arm {
  std::string name;
  IndexPolicy policy = IndexPolicy::kGain;
  double mean_interarrival = 60.0;
  FaultOptions faults;
};

struct ArmResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  int accounting_slack = 0;
  int goodput = 0;
};

ServiceOptions OverloadOptions(IndexPolicy policy, Seconds horizon,
                               uint64_t seed) {
  ServiceOptions so = bench::PaperServiceOptions(policy);
  so.total_time = horizon;
  so.seed = seed;
  so.admission.open_loop = true;
  so.admission.max_queue = 32;
  so.admission.shed = ShedPolicy::kDeadlineInfeasible;
  so.admission.slo_factor = 4.0;
  so.admission.retry_budget = 64;
  so.brownout.pressure_lo_quanta = 1.0;
  so.brownout.pressure_hi_quanta = 8.0;
  so.breaker.open_after = 4;
  so.breaker.open_duration = 300.0;
  return so;
}

ArmResult RunArm(const Arm& arm, Seconds horizon, uint64_t seed) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = OverloadOptions(arm.policy, horizon, seed);
  so.faults = arm.faults;
  QaasService service(&setup.catalog, so);
  ArrivalOptions arrivals;
  arrivals.mean_interarrival = arm.mean_interarrival;
  OpenLoopWorkloadClient client(setup.generator.get(), arrivals,
                                {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  ArmResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Open loop: the identity is exact, zero slack allowed.
  r.accounting_slack = m->dataflows_arrived - m->dataflows_finished -
                       m->dataflows_failed - m->dataflows_overran -
                       m->dataflows_shed;
  r.goodput = m->dataflows_finished - m->deadlines_missed;
  for (const auto& idx : setup.catalog.IndexIds()) {
    auto def = setup.catalog.GetIndexDef(idx);
    auto state = setup.catalog.GetIndexState(idx);
    if (!def.ok() || !state.ok()) continue;
    for (size_t p = 0; p < (*state)->num_partitions(); ++p) {
      if ((*state)->part(p).built &&
          !service.storage().Exists(
              (*def)->PartitionPath(static_cast<int>(p)))) {
        r.consistent = false;
      }
    }
  }
  return r;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double idx = p * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

struct FleetArm {
  std::string name;
  /// Pinned: min == max == initial (the autoscaler tops the fleet up to a
  /// constant target and never moves it). Elastic: pressure-driven.
  bool elastic = false;
  FaultOptions faults;
};

struct FleetArmResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  int accounting_slack = 0;
  int goodput = 0;
  double p99_qdelay = 0;
  Dollars vm_cost = 0;
  long long request_slack = 0;
  long long grant_slack = 0;
};

FleetArmResult RunFleetArm(const FleetArm& arm, int fleet_n, Seconds horizon,
                           uint64_t seed, const ArrivalOptions& arrivals) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = OverloadOptions(IndexPolicy::kGain, horizon, seed);
  so.faults = arm.faults;
  so.autoscaler.enabled = true;
  if (arm.elastic) {
    so.autoscaler.min_containers = 1;
    so.autoscaler.max_containers = 2 * fleet_n - 1;
    so.autoscaler.initial_containers = fleet_n;
    so.autoscaler.grow_pressure = 1.0;
    so.autoscaler.shrink_pressure = 0.5;
    so.autoscaler.grow_step = 2;
  } else {
    so.autoscaler.min_containers = fleet_n;
    so.autoscaler.max_containers = fleet_n;
    so.autoscaler.initial_containers = fleet_n;
    // The fixed baseline is a statically provisioned always-on fleet: it
    // pays for its idle lulls, which is exactly what elasticity removes.
    so.autoscaler.keep_alive = true;
  }
  QaasService service(&setup.catalog, so);
  OpenLoopWorkloadClient client(setup.generator.get(), arrivals,
                                {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "fleet arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  FleetArmResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.accounting_slack = m->dataflows_arrived - m->dataflows_finished -
                       m->dataflows_failed - m->dataflows_overran -
                       m->dataflows_shed;
  r.goodput = m->dataflows_finished - m->deadlines_missed;
  std::vector<double> qdelays;
  qdelays.reserve(m->timeline.size());
  for (const auto& pt : m->timeline) qdelays.push_back(pt.queue_delay_quanta);
  r.p99_qdelay = Percentile(qdelays, 0.99);
  r.vm_cost = service.fleet().total_vm_cost();
  const FleetLedger& ledger = service.fleet().ledger();
  r.request_slack = ledger.RequestSlack();
  r.grant_slack = ledger.GrantSlack(service.fleet().HeldCount());
  for (const auto& idx : setup.catalog.IndexIds()) {
    auto def = setup.catalog.GetIndexDef(idx);
    auto state = setup.catalog.GetIndexState(idx);
    if (!def.ok() || !state.ok()) continue;
    for (size_t p = 0; p < (*state)->num_partitions(); ++p) {
      if ((*state)->part(p).built &&
          !service.storage().Exists(
              (*def)->PartitionPath(static_cast<int>(p)))) {
        r.consistent = false;
      }
    }
  }
  return r;
}

// ---- Sharded tenant-scaling sweep --------------------------------------

struct ShardArm {
  std::string name;
  int num_shards = 1;
  bool batched = false;
};

struct ShardArmResult {
  ServiceMetrics agg;
  std::vector<ServiceMetrics> per_tenant;
  double wall_ms = 0;
  int accounting_slack = 0;  // aggregate open-loop identity
  int tenant_slack = 0;      // worst per-tenant open-loop identity residue
  bool sum_identity = true;  // aggregate == sum of per-tenant, every counter
  int goodput = 0;
};

ShardArmResult RunShardArm(const ShardArm& arm, int num_tenants,
                           Seconds horizon, uint64_t seed) {
  // One full paper world per tenant: tenants are the isolation unit, so
  // each gets its own catalog/database/storage underneath its service.
  std::vector<std::unique_ptr<bench::PaperSetup>> setups;
  std::vector<Catalog*> catalogs;
  for (int t = 0; t < num_tenants; ++t) {
    setups.push_back(std::make_unique<bench::PaperSetup>(seed));
    catalogs.push_back(&setups.back()->catalog);
  }
  ServiceOptions so = OverloadOptions(IndexPolicy::kGain, horizon, seed);
  // Tenants lease from slim per-tenant fleet slices (the global budget is
  // split eight ways), so a single dataflow takes several quanta and
  // co-arrivals genuinely wait together — the regime batching is for.
  so.tuner.sched.max_containers = 12;
  so.tuner.sched.skyline_cap = 3;
  if (arm.batched) {
    so.batch.max_batch = 4;
    so.batch.window_quanta = 10.0;
  }
  ShardOptions sh;
  sh.num_shards = arm.num_shards;
  ShardedQaasService service(catalogs, so, sh);
  ArrivalOptions arrivals;
  // Per-tenant interarrival is num_tenants x this (round-robin stamping),
  // sized so each tenant runs overloaded and queues actually form — batched
  // admission only matters when co-arrived dataflows are waiting together.
  arrivals.mean_interarrival = 10.0;
  OpenLoopWorkloadClient client(setups.front()->generator.get(), arrivals,
                                {{AppType::kMontage, 1e9}}, seed);
  client.set_num_tenants(num_tenants);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "sharded arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  ShardArmResult r;
  r.agg = *m;
  r.per_tenant = service.per_tenant();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.accounting_slack = m->dataflows_arrived - m->dataflows_finished -
                       m->dataflows_failed - m->dataflows_overran -
                       m->dataflows_shed;
  for (const auto& pt : r.per_tenant) {
    const int s = pt.dataflows_arrived - pt.dataflows_finished -
                  pt.dataflows_failed - pt.dataflows_overran -
                  pt.dataflows_shed;
    if (std::abs(s) > std::abs(r.tenant_slack)) r.tenant_slack = s;
  }
  // Zero-slack aggregation identity over every mirrored counter (float
  // counters get a last-ULP allowance; sums are associative-only on paper).
#define DFIM_BENCH_SUM(type, name)                                        \
  {                                                                       \
    double sum = 0;                                                       \
    for (const auto& pt : r.per_tenant) sum += static_cast<double>(pt.name); \
    const double agg = static_cast<double>(r.agg.name);                   \
    if (std::abs(sum - agg) > 1e-6 * std::max(1.0, std::abs(agg))) {      \
      r.sum_identity = false;                                             \
    }                                                                     \
  }
  DFIM_MIRRORED_COUNTERS(DFIM_BENCH_SUM)
#undef DFIM_BENCH_SUM
  r.goodput = m->dataflows_finished - m->deadlines_missed;
  return r;
}

/// Every mirrored counter of every tenant must match the shards=1 reference
/// bit for bit: tenants are isolated, so shard grouping is pure threading.
bool TenantsBitIdentical(const ShardArmResult& ref, const ShardArmResult& r) {
  if (ref.per_tenant.size() != r.per_tenant.size()) return false;
  for (size_t t = 0; t < ref.per_tenant.size(); ++t) {
    bool same = true;
#define DFIM_BENCH_CMP(type, name) \
  same = same && ref.per_tenant[t].name == r.per_tenant[t].name;
    DFIM_MIRRORED_COUNTERS(DFIM_BENCH_CMP)
#undef DFIM_BENCH_CMP
    if (!same) return false;
  }
  return true;
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  const bool fast = bench::FastMode();
  const Seconds horizon = (fast ? 60.0 : 720.0) * 60.0;
  const uint64_t seed = 7;

  // Load sweep, light to heavy, at two fault levels; each load level gets a
  // Gain arm (all overload controls on) and a no-index goodput floor.
  std::vector<double> rates = fast
                                  ? std::vector<double>{120.0, 60.0, 20.0}
                                  : std::vector<double>{240.0, 120.0, 60.0,
                                                        30.0, 15.0};
  std::vector<FaultOptions> fault_levels(2);
  fault_levels[1].crash_rate = 0.02;
  fault_levels[1].storage_fault_rate = 0.05;
  fault_levels[1].seed = 17;

  std::vector<Arm> arms;
  for (size_t fl = 0; fl < fault_levels.size(); ++fl) {
    for (double rate : rates) {
      for (IndexPolicy policy : {IndexPolicy::kGain, IndexPolicy::kNoIndex}) {
        Arm a;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s_ia%03d_f%zu",
                      policy == IndexPolicy::kGain ? "gain" : "noindex",
                      static_cast<int>(rate), fl);
        a.name = buf;
        a.policy = policy;
        a.mean_interarrival = rate;
        a.faults = fault_levels[fl];
        arms.push_back(a);
      }
    }
  }

  bench::Header("Overload sweep (open loop, Montage, " +
                std::to_string(static_cast<int>(horizon / 60.0)) + " quanta)");
  std::printf("%-18s %8s %8s %8s %8s %8s %8s %9s %8s %7s\n", "arm", "arrived",
              "finished", "shed", "ddl.miss", "goodput", "b.shed", "qdelay.q",
              "peak.q", "ok?");

  std::string json = "{\n  \"bench\": \"overload\",\n";
  json += "  \"workload\": \"montage\",\n  \"horizon_quanta\": " +
          std::to_string(static_cast<int>(horizon / 60.0)) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n  \"arms\": [\n";

  bool all_ok = true;
  std::vector<ArmResult> results;
  for (size_t i = 0; i < arms.size(); ++i) {
    ArmResult r = RunArm(arms[i], horizon, seed);
    results.push_back(r);
    const ServiceMetrics& m = r.m;
    bool ok = r.consistent && r.accounting_slack == 0;
    all_ok = all_ok && ok;
    std::printf("%-18s %8d %8d %8d %8d %8d %8d %9.1f %8d %7s\n",
                arms[i].name.c_str(), m.dataflows_arrived,
                m.dataflows_finished, m.dataflows_shed, m.deadlines_missed,
                r.goodput, m.builds_shed, m.queue_delay_quanta,
                m.peak_queue_len, ok ? "yes" : "NO");

    char buf[800];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"policy\": \"%s\", "
        "\"mean_interarrival\": %.0f, \"crash_rate\": %.4f, "
        "\"storage_fault_rate\": %.4f,\n"
        "     \"dataflows_arrived\": %d, \"dataflows_finished\": %d, "
        "\"dataflows_failed\": %d, \"dataflows_overran\": %d, "
        "\"dataflows_shed\": %d,\n"
        "     \"shed_queue_full\": %d, \"shed_infeasible\": %d, "
        "\"deadlines_missed\": %d, \"goodput\": %d, \"builds_shed\": %d,\n"
        "     \"breaker_opens\": %d, \"retries_denied\": %d, "
        "\"queue_delay_quanta\": %.2f, \"peak_queue_len\": %d,\n"
        "     \"total_vm_quanta\": %lld, \"index_partitions_built\": %d, "
        "\"storage_clock_clamps\": %lld,\n"
        "     \"accounting_slack\": %d, \"catalog_storage_consistent\": %s, "
        "\"wall_ms\": %.1f}",
        arms[i].name.c_str(),
        arms[i].policy == IndexPolicy::kGain ? "gain" : "noindex",
        arms[i].mean_interarrival, arms[i].faults.crash_rate,
        arms[i].faults.storage_fault_rate, m.dataflows_arrived,
        m.dataflows_finished, m.dataflows_failed, m.dataflows_overran,
        m.dataflows_shed, m.shed_queue_full, m.shed_infeasible,
        m.deadlines_missed, r.goodput, m.builds_shed, m.breaker_opens,
        m.retries_denied, m.queue_delay_quanta, m.peak_queue_len,
        static_cast<long long>(m.total_vm_quanta), m.index_partitions_built,
        static_cast<long long>(m.storage_clock_clamps), r.accounting_slack,
        r.consistent ? "true" : "false", r.wall_ms);
    json += buf;
    json += (i + 1 < arms.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";

  // Graceful-degradation checks over the per-fault-level Gain sweeps
  // (arms alternate gain/noindex per rate, rates light to heavy).
  const size_t per_level = rates.size() * 2;
  for (size_t fl = 0; fl < fault_levels.size(); ++fl) {
    int first_policy_shed = -1;  // load index where admission starts dropping
    int first_build_shed = -1;   // load index where brownout starts
    for (size_t j = 0; j < rates.size(); ++j) {
      const ArmResult& gain = results[fl * per_level + j * 2];
      const ArmResult& noindex = results[fl * per_level + j * 2 + 1];
      if (first_policy_shed < 0 &&
          gain.m.shed_queue_full + gain.m.shed_infeasible > 0) {
        first_policy_shed = static_cast<int>(j);
      }
      if (first_build_shed < 0 && gain.m.builds_shed > 0) {
        first_build_shed = static_cast<int>(j);
      }
      // Goodput floor: indexes + shedding must not do worse than just
      // running everything with no index management at all.
      if (gain.goodput < noindex.goodput) {
        std::printf("DEGRADATION VIOLATION: fault level %zu, interarrival "
                    "%.0f s: gain goodput %d < noindex %d\n",
                    fl, rates[j], gain.goodput, noindex.goodput);
        all_ok = false;
      }
    }
    // Brownout before load shedding: if admission ever dropped dataflows,
    // builds must have been shed at that load level or a lighter one.
    if (first_policy_shed >= 0 &&
        (first_build_shed < 0 || first_build_shed > first_policy_shed)) {
      std::printf("DEGRADATION VIOLATION: fault level %zu: dataflows shed "
                  "(load idx %d) before any builds shed (idx %d)\n",
                  fl, first_policy_shed, first_build_shed);
      all_ok = false;
    }
  }

  // ---- Elastic fleet sweep: pinned vs autoscaled at equal dollar spend,
  // plus a hostile-provider arm (quota throttle + cold starts + spot
  // preemption with a notice window).
  // Lulls matter: the baseline phase must be light enough for the queue to
  // actually drain, or the autoscaler never shrinks and elasticity cannot
  // pay for its bursts. Baseline is underloaded (~0.4 utilization), bursts
  // are transiently ~5x overloaded.
  ArrivalOptions bursty;
  bursty.mean_interarrival = 480.0;
  bursty.burst_mean_interarrival = 45.0;
  bursty.mean_baseline_duration = 900.0;
  bursty.mean_burst_duration = 300.0;
  // Size the pinned fleet off the long-run arrival rate (arrivals per
  // quantum x a nominal Montage service time of ~5 quanta on a small
  // fleet).
  const double quantum = 60.0;
  int fleet_n = static_cast<int>(
      std::ceil(bursty.MeanArrivalRate() * quantum * 5.0));
  fleet_n = std::max(2, std::min(fleet_n, 16));

  FaultOptions hostile;
  hostile.acquire_fail_rate = 0.2;
  hostile.boot_delay_max = 20.0;
  hostile.preempt_rate = 0.1;
  hostile.preempt_notice = 20.0;
  hostile.seed = 23;

  std::vector<FleetArm> fleet_arms;
  fleet_arms.push_back({"fleet_pinned", false, FaultOptions{}});
  fleet_arms.push_back({"fleet_elastic", true, FaultOptions{}});
  fleet_arms.push_back({"fleet_elastic_preempt", true, hostile});

  bench::Header("Elastic fleet sweep (bursty MMPP, pinned n=" +
                std::to_string(fleet_n) + " vs autoscaled)");
  std::printf("%-22s %8s %8s %8s %8s %9s %9s %8s %7s\n", "arm", "arrived",
              "finished", "goodput", "b.shed", "p99.qd.q", "vm.cost",
              "preempt", "ok?");

  json += "  \"elastic\": [\n";
  std::vector<FleetArmResult> fleet_results;
  for (size_t i = 0; i < fleet_arms.size(); ++i) {
    FleetArmResult r =
        RunFleetArm(fleet_arms[i], fleet_n, horizon, seed, bursty);
    fleet_results.push_back(r);
    const ServiceMetrics& m = r.m;
    // Self-check: both fleet ledger identities balance to zero slack, and
    // the open-loop accounting identity is exact.
    bool ok = r.consistent && r.accounting_slack == 0 &&
              r.request_slack == 0 && r.grant_slack == 0;
    all_ok = all_ok && ok;
    std::printf("%-22s %8d %8d %8d %8d %9.2f %9.2f %8d %7s\n",
                fleet_arms[i].name.c_str(), m.dataflows_arrived,
                m.dataflows_finished, r.goodput, m.builds_shed, r.p99_qdelay,
                r.vm_cost, m.containers_preempted, ok ? "yes" : "NO");

    char buf[900];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"fleet_n\": %d, \"elastic\": %s, "
        "\"preempt_rate\": %.4f, \"acquire_fail_rate\": %.4f,\n"
        "     \"dataflows_arrived\": %d, \"dataflows_finished\": %d, "
        "\"dataflows_failed\": %d, \"dataflows_shed\": %d, \"goodput\": %d, "
        "\"builds_shed\": %d,\n"
        "     \"p99_queue_delay_quanta\": %.4f, \"total_vm_cost\": %.4f, "
        "\"fleet_quanta_charged\": %lld,\n"
        "     \"fleet_acquire_requests\": %lld, \"fleet_granted\": %lld, "
        "\"acquires_denied_quota\": %lld, \"acquires_denied_capacity\": "
        "%lld,\n"
        "     \"containers_reaped\": %d, \"containers_drained\": %d, "
        "\"containers_preempted\": %d, \"acquire_backoffs\": %d, "
        "\"boot_wait_quanta\": %.4f,\n"
        "     \"request_slack\": %lld, \"grant_slack\": %lld, "
        "\"accounting_slack\": %d, \"wall_ms\": %.1f}",
        fleet_arms[i].name.c_str(), fleet_n,
        fleet_arms[i].elastic ? "true" : "false",
        fleet_arms[i].faults.preempt_rate,
        fleet_arms[i].faults.acquire_fail_rate, m.dataflows_arrived,
        m.dataflows_finished, m.dataflows_failed, m.dataflows_shed, r.goodput,
        m.builds_shed, r.p99_qdelay, r.vm_cost,
        static_cast<long long>(m.fleet_quanta_charged),
        static_cast<long long>(m.fleet_acquire_requests),
        static_cast<long long>(m.fleet_granted),
        static_cast<long long>(m.acquires_denied_quota),
        static_cast<long long>(m.acquires_denied_capacity),
        m.containers_reaped, m.containers_drained, m.containers_preempted,
        m.acquire_backoffs, m.boot_wait_quanta, r.request_slack, r.grant_slack,
        r.accounting_slack, r.wall_ms);
    json += buf;
    json += (i + 1 < fleet_arms.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";

  // Equal-dollar win: the autoscaled fleet must beat the pinned fleet on
  // p99 queue delay or goodput without outspending it.
  {
    const FleetArmResult& pinned = fleet_results[0];
    const FleetArmResult& elastic = fleet_results[1];
    if (elastic.vm_cost > pinned.vm_cost + 1e-9) {
      std::printf("ELASTIC VIOLATION: autoscaled fleet spent $%.2f > pinned "
                  "$%.2f\n",
                  elastic.vm_cost, pinned.vm_cost);
      all_ok = false;
    }
    if (!(elastic.p99_qdelay < pinned.p99_qdelay ||
          elastic.goodput > pinned.goodput)) {
      std::printf("ELASTIC VIOLATION: no strict win (p99 qdelay %.2f vs "
                  "%.2f, goodput %d vs %d)\n",
                  elastic.p99_qdelay, pinned.p99_qdelay, elastic.goodput,
                  pinned.goodput);
      all_ok = false;
    }
    // Hostile provider: the service keeps serving through throttles and
    // reclaims, and sheds optional builds before whole dataflows fail.
    const FleetArmResult& preempt = fleet_results[2];
    if (preempt.m.dataflows_finished == 0) {
      std::printf("ELASTIC VIOLATION: preemption arm finished nothing\n");
      all_ok = false;
    }
    if (preempt.m.dataflows_failed > 0 && preempt.m.builds_shed == 0) {
      std::printf("ELASTIC VIOLATION: dataflows failed (%d) with no builds "
                  "shed first\n",
                  preempt.m.dataflows_failed);
      all_ok = false;
    }
  }

  // ---- Sharded tenant-scaling sweep: 8 tenants across 1/2/4/8 shards,
  // batched admission off and on, every arm at the same per-tenant fleet
  // budget (identical service options modulo the batch knobs). Self-checks:
  // the open-loop accounting identity is exact per tenant AND in aggregate,
  // the aggregate equals the per-tenant sum on every mirrored counter, the
  // per-tenant metrics are bit-identical across shard counts (shards are
  // pure threading), and batched goodput keeps up with one-at-a-time.
  const int num_tenants = 8;
  const Seconds shard_horizon = (fast ? 60.0 : 240.0) * 60.0;
  std::vector<ShardArm> shard_arms;
  for (bool batched : {false, true}) {
    for (int s : {1, 2, 4, 8}) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "sharded_s%d_%s", s,
                    batched ? "batched" : "plain");
      shard_arms.push_back({buf, s, batched});
    }
  }

  bench::Header("Sharded tenant scaling (8 tenants, " +
                std::to_string(static_cast<int>(shard_horizon / 60.0)) +
                " quanta)");
  std::printf("%-18s %8s %8s %8s %8s %8s %8s %9s %8s %7s\n", "arm", "arrived",
              "finished", "shed", "goodput", "batches", "b.flows", "vm.q",
              "wall.ms", "ok?");

  json += "  \"sharded\": [\n";
  std::vector<ShardArmResult> shard_results;
  for (size_t i = 0; i < shard_arms.size(); ++i) {
    ShardArmResult r =
        RunShardArm(shard_arms[i], num_tenants, shard_horizon, seed);
    shard_results.push_back(r);
    const ShardArmResult& cur = shard_results.back();
    const ServiceMetrics& m = cur.agg;
    // Reference for bit-identity: the shards=1 arm of the same batch mode.
    const ShardArmResult& ref = shard_results[(i / 4) * 4];
    const bool invariant = TenantsBitIdentical(ref, cur);
    bool ok = cur.accounting_slack == 0 && cur.tenant_slack == 0 &&
              cur.sum_identity && invariant;
    if (!invariant) {
      std::printf("SHARDING VIOLATION: %s per-tenant metrics differ from "
                  "%s\n",
                  shard_arms[i].name.c_str(),
                  shard_arms[(i / 4) * 4].name.c_str());
    }
    all_ok = all_ok && ok;
    std::printf("%-18s %8d %8d %8d %8d %8lld %8lld %9lld %8.1f %7s\n",
                shard_arms[i].name.c_str(), m.dataflows_arrived,
                m.dataflows_finished, m.dataflows_shed, cur.goodput,
                static_cast<long long>(m.dataflow_batches),
                static_cast<long long>(m.batched_dataflows),
                static_cast<long long>(m.total_vm_quanta), cur.wall_ms,
                ok ? "yes" : "NO");

    char buf[800];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"num_shards\": %d, \"batched\": %s, "
        "\"num_tenants\": %d, \"horizon_quanta\": %d,\n"
        "     \"dataflows_arrived\": %d, \"dataflows_finished\": %d, "
        "\"dataflows_failed\": %d, \"dataflows_overran\": %d, "
        "\"dataflows_shed\": %d,\n"
        "     \"goodput\": %d, \"builds_shed\": %d, "
        "\"dataflow_batches\": %lld, \"batched_dataflows\": %lld, "
        "\"gate_puts\": %lld,\n"
        "     \"total_vm_quanta\": %lld, \"queue_delay_quanta\": %.2f, "
        "\"accounting_slack\": %d, \"tenant_slack\": %d,\n"
        "     \"sum_identity\": %s, \"tenants_bit_identical\": %s, "
        "\"wall_ms\": %.1f}",
        shard_arms[i].name.c_str(), shard_arms[i].num_shards,
        shard_arms[i].batched ? "true" : "false", num_tenants,
        static_cast<int>(shard_horizon / 60.0), m.dataflows_arrived,
        m.dataflows_finished, m.dataflows_failed, m.dataflows_overran,
        m.dataflows_shed, cur.goodput, m.builds_shed,
        static_cast<long long>(m.dataflow_batches),
        static_cast<long long>(m.batched_dataflows),
        static_cast<long long>(m.gate_puts),
        static_cast<long long>(m.total_vm_quanta), m.queue_delay_quanta,
        cur.accounting_slack, cur.tenant_slack,
        cur.sum_identity ? "true" : "false", invariant ? "true" : "false",
        cur.wall_ms);
    json += buf;
    json += (i + 1 < shard_arms.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  // Batched admission must keep up: merging co-arrived dataflows through a
  // single skyline pass may not cost aggregate goodput at shards=1.
  {
    const ShardArmResult& plain = shard_results[0];
    const ShardArmResult& batched = shard_results[4];
    if (batched.goodput < plain.goodput) {
      std::printf("SHARDING VIOLATION: batched goodput %d < one-at-a-time "
                  "%d at shards=1\n",
                  batched.goodput, plain.goodput);
      all_ok = false;
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s (all checks %s)\n", out_path,
              all_ok ? "passed" : "FAILED");
  return all_ok ? 0 : 1;
}
