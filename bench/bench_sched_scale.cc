// Skyline-scheduler scaling bench: sweeps DAG width/depth x container count
// x skyline cap, timing the retained naive engine against the incremental
// (and parallel) probe/commit engine on identical inputs, and writes
// BENCH_sched.json (min/median runtime per config, generate_stats style) so
// successive PRs have a recorded perf trajectory.
//
// Also microbenches the slot-search primitives: the flat SoA Timeline scans
// (FindSlot / MaxGapWithInsert) against the retained AoS
// std::vector<Assignment> walk they replaced, on timelines tiled from the
// schedules this config actually produces. Checksums are compared
// bit-identically so neither side can be dead-code-eliminated or wrong.
//
// Usage: bench_sched_scale [output.json]
// Env:   DFIM_FAST=1        fewer repetitions (CI smoke)
//        DFIM_BENCH_CHECK=1 exit nonzero if any engine or slot-search
//                           median speedup falls below 1.0x

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/skyline_scheduler.h"

namespace dfim {
namespace {

Dag RandomLayeredDag(int width, int depth, int optional_ops, uint64_t seed) {
  Rng rng(seed);
  Dag g;
  std::vector<int> prev_layer;
  for (int d = 0; d < depth; ++d) {
    std::vector<int> layer;
    for (int w = 0; w < width; ++w) {
      Operator op;
      op.time = rng.Uniform(5.0, 90.0);
      op.output_mb = rng.Uniform(1.0, 800.0);
      int id = g.AddOperator(std::move(op));
      layer.push_back(id);
      if (!prev_layer.empty()) {
        int parents = static_cast<int>(rng.UniformInt(1, 3));
        for (int p = 0; p < parents; ++p) {
          int from = prev_layer[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(prev_layer.size()) - 1))];
          (void)g.AddFlow(from, id, rng.Uniform(1.0, 800.0));
        }
      }
    }
    prev_layer = std::move(layer);
  }
  for (int i = 0; i < optional_ops; ++i) {
    Operator build = Operator::BuildIndex(
        static_cast<int>(g.num_ops()), "idx_" + std::to_string(i), i,
        rng.Uniform(5.0, 45.0), 64);
    build.gain = rng.Uniform(0.1, 5.0);
    g.AddOperator(std::move(build));
  }
  return g;
}

std::vector<Seconds> Durations(const Dag& g) {
  std::vector<Seconds> d(g.num_ops());
  for (const auto& op : g.ops()) d[static_cast<size_t>(op.id)] = op.time;
  return d;
}

struct Stats {
  double min_ms = 0;
  double median_ms = 0;
  std::vector<double> runtimes_ms;
};

/// generate_stats idiom: min + median over the repetition runtimes.
Stats MakeStats(std::vector<double> runtimes) {
  Stats s;
  s.runtimes_ms = runtimes;
  std::sort(runtimes.begin(), runtimes.end());
  s.min_ms = runtimes.front();
  s.median_ms = runtimes[runtimes.size() / 2];
  return s;
}

Stats TimeEngine(const Dag& g, const std::vector<Seconds>& durations,
                 const SchedulerOptions& opts, int reps,
                 std::vector<Schedule>* last_skyline) {
  SkylineScheduler sched(opts);
  std::vector<double> runtimes;
  runtimes.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto skyline = sched.ScheduleDag(g, durations, /*place_optional=*/true);
    auto t1 = std::chrono::steady_clock::now();
    if (!skyline.ok()) {
      std::fprintf(stderr, "schedule failed: %s\n",
                   skyline.status().ToString().c_str());
      std::exit(1);
    }
    runtimes.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (r + 1 == reps) *last_skyline = std::move(*skyline);
  }
  return MakeStats(std::move(runtimes));
}

/// Retained AoS baseline: the pre-SoA timeline walk, byte-for-byte the
/// semantics Timeline::FindSlot now implements over flat columns.
Seconds AosFindSlot(const std::vector<Assignment>& tl, Seconds est,
                    Seconds duration) {
  Seconds cursor = 0;
  for (const auto& a : tl) {
    Seconds candidate = std::max(est, cursor);
    if (a.start - candidate >= duration - 1e-9) return candidate;
    cursor = std::max(cursor, a.end);
  }
  return std::max(est, cursor);
}

/// Retained AoS baseline for Timeline::MaxGapWithInsert.
Seconds AosMaxGapWithInsert(const std::vector<Assignment>& tl,
                            const Assignment& a, Seconds quantum) {
  Seconds best = 0;
  Seconds cursor = 0;
  bool placed = false;
  for (const auto& x : tl) {
    if (!placed && x.start >= a.start) {
      best = std::max(best, a.start - cursor);
      cursor = std::max(cursor, a.end);
      placed = true;
    }
    best = std::max(best, x.start - cursor);
    cursor = std::max(cursor, x.end);
  }
  if (!placed) {
    best = std::max(best, a.start - cursor);
    cursor = std::max(cursor, a.end);
  }
  Seconds lease_end =
      static_cast<double>(std::max<int64_t>(1, QuantaCeil(cursor, quantum))) *
      quantum;
  return std::max(best, lease_end - cursor);
}

struct SlotProbe {
  Seconds est;
  Seconds duration;
};

struct SlotBench {
  Stats aos;
  Stats flat;
  double speedup_median = 0;
};

/// Times the slot-search primitives on timelines tiled from `schedule`:
/// each container's assignments are repeated `tiles` times, shifted by the
/// schedule makespan, so the scans cover realistic multi-quantum timelines
/// rather than the handful of entries one dataflow produces.
SlotBench TimeSlotSearch(const Schedule& schedule, int num_containers,
                         int tiles, int probes, Seconds quantum, int reps,
                         uint64_t seed) {
  Seconds span = std::max<Seconds>(schedule.makespan(), 1.0);
  std::vector<Timeline> flat(static_cast<size_t>(num_containers));
  std::vector<std::vector<Assignment>> aos(
      static_cast<size_t>(num_containers));
  for (int t = 0; t < tiles; ++t) {
    for (const auto& a : schedule.SortedByContainer()) {
      if (a.container < 0 || a.container >= num_containers) continue;
      Assignment shifted = a;
      shifted.start += static_cast<double>(t) * span;
      shifted.end += static_cast<double>(t) * span;
      flat[static_cast<size_t>(a.container)].Insert(shifted);
      auto& tl = aos[static_cast<size_t>(a.container)];
      tl.insert(std::lower_bound(tl.begin(), tl.end(), shifted,
                                 [](const Assignment& x, const Assignment& y) {
                                   return x.start < y.start;
                                 }),
                shifted);
    }
  }

  Rng rng(seed);
  std::vector<SlotProbe> probe_set;
  probe_set.reserve(static_cast<size_t>(probes));
  for (int i = 0; i < probes; ++i) {
    probe_set.push_back({rng.Uniform(0.0, static_cast<double>(tiles) * span),
                         rng.Uniform(0.0, 120.0)});
  }

  // Checksums accumulate every returned slot and gap so the compiler cannot
  // discard either loop; they must match bit-for-bit across representations.
  auto run_aos = [&] {
    double sum = 0;
    for (const auto& p : probe_set) {
      for (const auto& tl : aos) {
        sum += AosFindSlot(tl, p.est, p.duration);
        Assignment a;
        a.op_id = 0;
        a.start = p.est;
        a.end = p.est + p.duration;
        sum += AosMaxGapWithInsert(tl, a, quantum);
      }
    }
    return sum;
  };
  auto run_flat = [&] {
    double sum = 0;
    for (const auto& p : probe_set) {
      for (const auto& tl : flat) {
        sum += tl.FindSlot(p.est, p.duration);
        Assignment a;
        a.op_id = 0;
        a.start = p.est;
        a.end = p.est + p.duration;
        sum += tl.MaxGapWithInsert(a, quantum);
      }
    }
    return sum;
  };

  double aos_sum = run_aos();  // warm + checksum
  double flat_sum = run_flat();
  if (aos_sum != flat_sum) {
    std::fprintf(stderr,
                 "FATAL: slot-search checksum mismatch (aos=%.17g flat=%.17g)\n",
                 aos_sum, flat_sum);
    std::exit(1);
  }

  SlotBench out;
  std::vector<double> aos_ms, flat_ms;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    double s = run_aos();
    auto t1 = std::chrono::steady_clock::now();
    double f = run_flat();
    auto t2 = std::chrono::steady_clock::now();
    if (s != aos_sum || f != flat_sum) {
      std::fprintf(stderr, "FATAL: slot-search checksum drifted\n");
      std::exit(1);
    }
    aos_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    flat_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  out.aos = MakeStats(std::move(aos_ms));
  out.flat = MakeStats(std::move(flat_ms));
  out.speedup_median =
      out.flat.median_ms > 0 ? out.aos.median_ms / out.flat.median_ms : 0;
  return out;
}

bool SameSkylines(const std::vector<Schedule>& a,
                  const std::vector<Schedule>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    auto sa = a[i].SortedByContainer();
    auto sb = b[i].SortedByContainer();
    if (sa.size() != sb.size()) return false;
    for (size_t k = 0; k < sa.size(); ++k) {
      if (sa[k].op_id != sb[k].op_id || sa[k].container != sb[k].container ||
          sa[k].start != sb[k].start || sa[k].end != sb[k].end) {
        return false;
      }
    }
  }
  return true;
}

void AppendStats(std::string* out, const char* name, const Stats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"min_runtime_ms\": %.4f, "
                "\"median_runtime_ms\": %.4f, \"runtimes_ms\": [",
                name, s.min_ms, s.median_ms);
  *out += buf;
  for (size_t i = 0; i < s.runtimes_ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i ? ", " : "", s.runtimes_ms[i]);
    *out += buf;
  }
  *out += "]}";
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sched.json";
  const char* fast = std::getenv("DFIM_FAST");
  const int reps = (fast != nullptr && fast[0] == '1') ? 3 : 7;

  struct Config {
    int width, depth, optional_ops, containers, cap;
  };
  // Largest config: 64-op DAG (16x4), 16 containers, skyline cap 32.
  const std::vector<Config> configs = {
      {4, 4, 4, 4, 8},    {8, 4, 6, 8, 8},    {8, 8, 8, 8, 16},
      {16, 4, 8, 16, 16}, {16, 4, 8, 16, 32},
  };

  std::string json = "{\n  \"bench\": \"sched_scale\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"quantum\": 60,\n  \"configs\": [\n";

  std::printf("%-22s %-12s %10s %10s %10s %8s %s\n", "config", "engine",
              "min(ms)", "median(ms)", "speedup", "same?", "");
  bool first = true;
  double min_engine_speedup = 1e30;
  double min_slot_speedup = 1e30;
  for (const auto& cfg : configs) {
    Dag g = RandomLayeredDag(cfg.width, cfg.depth, cfg.optional_ops, 42);
    auto durations = Durations(g);

    SchedulerOptions naive_opts;
    naive_opts.max_containers = cfg.containers;
    naive_opts.skyline_cap = cfg.cap;
    naive_opts.use_naive_expansion = true;
    SchedulerOptions inc_opts = naive_opts;
    inc_opts.use_naive_expansion = false;
    SchedulerOptions par_opts = inc_opts;
    par_opts.num_threads = 2;

    std::vector<Schedule> naive_sky, inc_sky, par_sky;
    Stats naive = TimeEngine(g, durations, naive_opts, reps, &naive_sky);
    Stats inc = TimeEngine(g, durations, inc_opts, reps, &inc_sky);
    Stats par = TimeEngine(g, durations, par_opts, reps, &par_sky);

    bool identical =
        SameSkylines(naive_sky, inc_sky) && SameSkylines(inc_sky, par_sky);
    double speedup = inc.median_ms > 0 ? naive.median_ms / inc.median_ms : 0;
    min_engine_speedup = std::min(min_engine_speedup, speedup);

    SlotBench slot = TimeSlotSearch(inc_sky.front(), cfg.containers,
                                    /*tiles=*/16, /*probes=*/4096,
                                    /*quantum=*/60.0, reps, /*seed=*/42);
    min_slot_speedup = std::min(min_slot_speedup, slot.speedup_median);

    char label[64];
    std::snprintf(label, sizeof(label), "%dx%d+%d c%d cap%d", cfg.width,
                  cfg.depth, cfg.optional_ops, cfg.containers, cfg.cap);
    std::printf("%-22s %-12s %10.3f %10.3f %10s %8s\n", label, "naive",
                naive.min_ms, naive.median_ms, "", "");
    std::printf("%-22s %-12s %10.3f %10.3f %9.2fx %8s\n", "", "incremental",
                inc.min_ms, inc.median_ms, speedup, identical ? "yes" : "NO");
    std::printf("%-22s %-12s %10.3f %10.3f\n", "", "parallel2", par.min_ms,
                par.median_ms);
    std::printf("%-22s %-12s %10.3f %10.3f\n", "", "slot:aos", slot.aos.min_ms,
                slot.aos.median_ms);
    std::printf("%-22s %-12s %10.3f %10.3f %9.2fx\n", "", "slot:flat",
                slot.flat.min_ms, slot.flat.median_ms, slot.speedup_median);

    if (!first) json += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"width\": %d, \"depth\": %d, \"optional_ops\": %d, "
                  "\"ops\": %d, \"containers\": %d, \"skyline_cap\": %d,\n",
                  cfg.width, cfg.depth, cfg.optional_ops,
                  cfg.width * cfg.depth + cfg.optional_ops, cfg.containers,
                  cfg.cap);
    json += buf;
    AppendStats(&json, "naive", naive);
    json += ",\n";
    AppendStats(&json, "incremental", inc);
    json += ",\n";
    AppendStats(&json, "parallel2", par);
    json += ",\n";
    AppendStats(&json, "slot_search_aos", slot.aos);
    json += ",\n";
    AppendStats(&json, "slot_search_flat", slot.flat);
    json += ",\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"slot_search_speedup_median\": %.3f,\n",
                  slot.speedup_median);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_median\": %.3f, \"identical_schedules\": %s\n"
                  "    }",
                  speedup, identical ? "true" : "false");
    json += buf;
    if (!identical) {
      std::fprintf(stderr, "FATAL: engines disagree on %s\n", label);
      return 1;
    }
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  const char* check = std::getenv("DFIM_BENCH_CHECK");
  if (check != nullptr && check[0] == '1') {
    if (min_engine_speedup < 1.0 || min_slot_speedup < 1.0) {
      std::fprintf(stderr,
                   "BENCH CHECK FAILED: min engine speedup %.3fx, min "
                   "slot-search speedup %.3fx (both must be >= 1.0x)\n",
                   min_engine_speedup, min_slot_speedup);
      return 1;
    }
    std::printf("bench check ok: min engine speedup %.3fx, min slot-search "
                "speedup %.3fx\n",
                min_engine_speedup, min_slot_speedup);
  }
  return 0;
}
