// Skyline-scheduler scaling bench: sweeps DAG width/depth x container count
// x skyline cap, timing the retained naive engine against the incremental
// (and parallel) probe/commit engine on identical inputs, and writes
// BENCH_sched.json (min/median runtime per config, generate_stats style) so
// successive PRs have a recorded perf trajectory.
//
// Usage: bench_sched_scale [output.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/skyline_scheduler.h"

namespace dfim {
namespace {

Dag RandomLayeredDag(int width, int depth, int optional_ops, uint64_t seed) {
  Rng rng(seed);
  Dag g;
  std::vector<int> prev_layer;
  for (int d = 0; d < depth; ++d) {
    std::vector<int> layer;
    for (int w = 0; w < width; ++w) {
      Operator op;
      op.time = rng.Uniform(5.0, 90.0);
      op.output_mb = rng.Uniform(1.0, 800.0);
      int id = g.AddOperator(std::move(op));
      layer.push_back(id);
      if (!prev_layer.empty()) {
        int parents = static_cast<int>(rng.UniformInt(1, 3));
        for (int p = 0; p < parents; ++p) {
          int from = prev_layer[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(prev_layer.size()) - 1))];
          (void)g.AddFlow(from, id, rng.Uniform(1.0, 800.0));
        }
      }
    }
    prev_layer = std::move(layer);
  }
  for (int i = 0; i < optional_ops; ++i) {
    Operator build = Operator::BuildIndex(
        static_cast<int>(g.num_ops()), "idx_" + std::to_string(i), i,
        rng.Uniform(5.0, 45.0), 64);
    build.gain = rng.Uniform(0.1, 5.0);
    g.AddOperator(std::move(build));
  }
  return g;
}

std::vector<Seconds> Durations(const Dag& g) {
  std::vector<Seconds> d(g.num_ops());
  for (const auto& op : g.ops()) d[static_cast<size_t>(op.id)] = op.time;
  return d;
}

struct Stats {
  double min_ms = 0;
  double median_ms = 0;
  std::vector<double> runtimes_ms;
};

/// generate_stats idiom: min + median over the repetition runtimes.
Stats MakeStats(std::vector<double> runtimes) {
  Stats s;
  s.runtimes_ms = runtimes;
  std::sort(runtimes.begin(), runtimes.end());
  s.min_ms = runtimes.front();
  s.median_ms = runtimes[runtimes.size() / 2];
  return s;
}

Stats TimeEngine(const Dag& g, const std::vector<Seconds>& durations,
                 const SchedulerOptions& opts, int reps,
                 std::vector<Schedule>* last_skyline) {
  SkylineScheduler sched(opts);
  std::vector<double> runtimes;
  runtimes.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto skyline = sched.ScheduleDag(g, durations, /*place_optional=*/true);
    auto t1 = std::chrono::steady_clock::now();
    if (!skyline.ok()) {
      std::fprintf(stderr, "schedule failed: %s\n",
                   skyline.status().ToString().c_str());
      std::exit(1);
    }
    runtimes.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (r + 1 == reps) *last_skyline = std::move(*skyline);
  }
  return MakeStats(std::move(runtimes));
}

bool SameSkylines(const std::vector<Schedule>& a,
                  const std::vector<Schedule>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    auto sa = a[i].SortedByContainer();
    auto sb = b[i].SortedByContainer();
    if (sa.size() != sb.size()) return false;
    for (size_t k = 0; k < sa.size(); ++k) {
      if (sa[k].op_id != sb[k].op_id || sa[k].container != sb[k].container ||
          sa[k].start != sb[k].start || sa[k].end != sb[k].end) {
        return false;
      }
    }
  }
  return true;
}

void AppendStats(std::string* out, const char* name, const Stats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"min_runtime_ms\": %.4f, "
                "\"median_runtime_ms\": %.4f, \"runtimes_ms\": [",
                name, s.min_ms, s.median_ms);
  *out += buf;
  for (size_t i = 0; i < s.runtimes_ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i ? ", " : "", s.runtimes_ms[i]);
    *out += buf;
  }
  *out += "]}";
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sched.json";
  const char* fast = std::getenv("DFIM_FAST");
  const int reps = (fast != nullptr && fast[0] == '1') ? 3 : 7;

  struct Config {
    int width, depth, optional_ops, containers, cap;
  };
  // Largest config: 64-op DAG (16x4), 16 containers, skyline cap 32.
  const std::vector<Config> configs = {
      {4, 4, 4, 4, 8},    {8, 4, 6, 8, 8},    {8, 8, 8, 8, 16},
      {16, 4, 8, 16, 16}, {16, 4, 8, 16, 32},
  };

  std::string json = "{\n  \"bench\": \"sched_scale\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"quantum\": 60,\n  \"configs\": [\n";

  std::printf("%-22s %-12s %10s %10s %10s %8s %s\n", "config", "engine",
              "min(ms)", "median(ms)", "speedup", "same?", "");
  bool first = true;
  for (const auto& cfg : configs) {
    Dag g = RandomLayeredDag(cfg.width, cfg.depth, cfg.optional_ops, 42);
    auto durations = Durations(g);

    SchedulerOptions naive_opts;
    naive_opts.max_containers = cfg.containers;
    naive_opts.skyline_cap = cfg.cap;
    naive_opts.use_naive_expansion = true;
    SchedulerOptions inc_opts = naive_opts;
    inc_opts.use_naive_expansion = false;
    SchedulerOptions par_opts = inc_opts;
    par_opts.num_threads = 2;

    std::vector<Schedule> naive_sky, inc_sky, par_sky;
    Stats naive = TimeEngine(g, durations, naive_opts, reps, &naive_sky);
    Stats inc = TimeEngine(g, durations, inc_opts, reps, &inc_sky);
    Stats par = TimeEngine(g, durations, par_opts, reps, &par_sky);

    bool identical =
        SameSkylines(naive_sky, inc_sky) && SameSkylines(inc_sky, par_sky);
    double speedup = inc.median_ms > 0 ? naive.median_ms / inc.median_ms : 0;

    char label[64];
    std::snprintf(label, sizeof(label), "%dx%d+%d c%d cap%d", cfg.width,
                  cfg.depth, cfg.optional_ops, cfg.containers, cfg.cap);
    std::printf("%-22s %-12s %10.3f %10.3f %10s %8s\n", label, "naive",
                naive.min_ms, naive.median_ms, "", "");
    std::printf("%-22s %-12s %10.3f %10.3f %9.2fx %8s\n", "", "incremental",
                inc.min_ms, inc.median_ms, speedup, identical ? "yes" : "NO");
    std::printf("%-22s %-12s %10.3f %10.3f\n", "", "parallel2", par.min_ms,
                par.median_ms);

    if (!first) json += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"width\": %d, \"depth\": %d, \"optional_ops\": %d, "
                  "\"ops\": %d, \"containers\": %d, \"skyline_cap\": %d,\n",
                  cfg.width, cfg.depth, cfg.optional_ops,
                  cfg.width * cfg.depth + cfg.optional_ops, cfg.containers,
                  cfg.cap);
    json += buf;
    AppendStats(&json, "naive", naive);
    json += ",\n";
    AppendStats(&json, "incremental", inc);
    json += ",\n";
    AppendStats(&json, "parallel2", par);
    json += ",\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"speedup_median\": %.3f, \"identical_schedules\": %s\n"
                  "    }",
                  speedup, identical ? "true" : "false");
    json += buf;
    if (!identical) {
      std::fprintf(stderr, "FATAL: engines disagree on %s\n", label);
      return 1;
    }
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
