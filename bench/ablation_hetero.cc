// Future-work evaluation (paper §7: "evaluate the benefits of index
// management for scenarios with heterogeneous cloud resources"): schedules
// each workflow family on a homogeneous standard pool, a homogeneous
// large-VM pool, and a mixed pool, comparing the fastest and cheapest
// skyline endpoints.

#include <cstdio>

#include "bench_util.h"
#include "core/tuner.h"
#include "sched/hetero_scheduler.h"

int main() {
  using namespace dfim;
  bench::Header("Heterogeneous VM pools -- skyline endpoints per pool");
  auto setup = std::make_unique<bench::PaperSetup>(7);
  SchedulerOptions so = bench::PaperSchedulerOptions();
  so.max_containers = 24;
  so.skyline_cap = 6;

  const VmType kStandard{"standard", 1.0, 0.1, 125.0};
  const VmType kLarge{"large", 4.0, 0.5, 250.0};
  struct Pool {
    const char* name;
    std::vector<VmType> types;
  };
  const Pool pools[] = {
      {"standard only", {kStandard}},
      {"large only", {kLarge}},
      {"mixed", {kStandard, kLarge}},
  };

  int reps = bench::FastMode() ? 1 : 3;
  std::printf("\n%-12s %-14s %12s %12s %14s %14s\n", "Dataflow", "Pool",
              "Fast t(s)", "Fast $$", "Cheap t(s)", "Cheap $$");
  for (AppType app :
       {AppType::kMontage, AppType::kLigo, AppType::kCybershake}) {
    for (const Pool& pool : pools) {
      double ft = 0, fm = 0, ct = 0, cm = 0;
      int n = 0;
      for (int i = 0; i < reps; ++i) {
        Dataflow df = setup->generator->Generate(app, i, 0);
        std::vector<Seconds> durations;
        std::vector<SimOpCost> costs;
        BuildDataflowCosts(df.dag, df, setup->catalog, so.net_mb_per_sec,
                           &durations, &costs);
        HeteroSkylineScheduler sched(so, pool.types);
        auto skyline = sched.ScheduleDag(df.dag, durations);
        if (!skyline.ok() || skyline->empty()) continue;
        ft += skyline->front().makespan();
        fm += skyline->front().money;
        ct += skyline->back().makespan();
        cm += skyline->back().money;
        ++n;
      }
      if (n == 0) continue;
      std::printf("%-12s %-14s %12.1f %12.2f %14.1f %14.2f\n",
                  std::string(AppTypeToString(app)).c_str(), pool.name,
                  ft / n, fm / n, ct / n, cm / n);
    }
  }
  bench::Note("Expected: the mixed pool's fastest point matches (or beats) "
              "the large-only pool while its cheapest point matches the "
              "standard-only pool — heterogeneity widens the skyline.");
  return 0;
}
