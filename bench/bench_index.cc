// Index-kernel microbench: probes the arena/SoA BPlusTree against the
// retained pointer-chasing BPlusTreeRef (the pre-rewrite layout) on bulk
// loaded trees swept from L2-resident to LLC-exceeding sizes, and sweeps the
// pipelined LookupBatch group size. Writes BENCH_index.json (min/median
// runtime per arm, generate_stats style) so successive PRs have a recorded
// perf trajectory for the probe path that CalibrationQueries / the gain
// calibration sit on (DESIGN.md §11).
//
// Every arm folds each visited (key, row) pair into a uint64 checksum;
// mismatches are fatal regardless of env, so no arm can be dead-code
// eliminated or wrong: the batched kernels must visit bit-identical
// sequences to one-at-a-time probes.
//
// Usage: bench_index [output.json]
// Env:   DFIM_FAST=1        fewer repetitions + smaller trees (CI smoke)
//        DFIM_BENCH_CHECK=1 exit nonzero if batched+prefetch lookup fails
//                           its throughput gate over one-at-a-time scalar
//                           probes (>= 1.5x median on LLC-exceeding trees in
//                           full mode; >= 0.7x sanity floor in fast mode,
//                           where trees are cache-resident and the gap is
//                           noise-dominated).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/bplus_tree.h"
#include "index/bplus_tree_ref.h"

namespace dfim {
namespace {

struct Stats {
  double min_ms = 0;
  double median_ms = 0;
  std::vector<double> runtimes_ms;
};

/// generate_stats idiom: min + median over the repetition runtimes.
Stats MakeStats(std::vector<double> runtimes) {
  Stats s;
  s.runtimes_ms = runtimes;
  std::sort(runtimes.begin(), runtimes.end());
  s.min_ms = runtimes.front();
  s.median_ms = runtimes[runtimes.size() / 2];
  return s;
}

/// Mixes one visited (key, row) pair into the running checksum. Any
/// order-sensitive fold works: identical visit sequences give identical
/// sums, and that is exactly the bit-identity contract under test.
inline uint64_t Fold(uint64_t sum, int64_t key, RowId row) {
  sum = sum * 0x100000001b3ULL + static_cast<uint64_t>(key);
  sum = sum * 0x100000001b3ULL + row;
  return sum;
}

/// Times `fn` (which returns its checksum) `reps` times; every repetition
/// must reproduce `want` exactly.
template <typename Fn>
Stats TimeArm(const char* label, uint64_t want, int reps, Fn&& fn) {
  std::vector<double> runtimes;
  runtimes.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    uint64_t got = fn();
    auto t1 = std::chrono::steady_clock::now();
    if (got != want) {
      std::fprintf(stderr,
                   "FATAL: %s checksum mismatch (got %llu want %llu)\n", label,
                   static_cast<unsigned long long>(got),
                   static_cast<unsigned long long>(want));
      std::exit(1);
    }
    runtimes.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return MakeStats(std::move(runtimes));
}

void AppendStats(std::string* out, const char* name, const Stats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"min_runtime_ms\": %.4f, "
                "\"median_runtime_ms\": %.4f, \"runtimes_ms\": [",
                name, s.min_ms, s.median_ms);
  *out += buf;
  for (size_t i = 0; i < s.runtimes_ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i ? ", " : "", s.runtimes_ms[i]);
    *out += buf;
  }
  *out += "]}";
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_index.json";
  const char* fast_env = std::getenv("DFIM_FAST");
  const bool fast = fast_env != nullptr && fast_env[0] == '1';
  const int reps = fast ? 3 : 7;
  const int dup = 2;  // rows per key

  struct Config {
    size_t entries;
    size_t page_bytes;
    bool llc_exceeding;  // columns far beyond LLC: the gated configs
  };
  // ~16 bytes of column data per entry: 16k entries is L2-resident, 256k
  // sits around LLC, 4M (64 MB of columns) is DRAM-bound. The 256-byte-page
  // variant deepens the tree (capacity 16 vs 256) on the same data.
  const std::vector<Config> configs =
      fast ? std::vector<Config>{{16384, 4096, false}, {65536, 256, false}}
           : std::vector<Config>{{16384, 4096, false},
                                 {262144, 4096, false},
                                 {4194304, 4096, true},
                                 {4194304, 256, true}};
  const size_t lookups = fast ? 20000 : 100000;
  const size_t ranges = fast ? 2000 : 10000;
  const size_t range_width = 8;  // keys per range => ~16 rows visited
  const std::vector<size_t> groups = {4, 8, 16};

  std::string json = "{\n  \"bench\": \"index\",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"lookups\": " + std::to_string(lookups) + ",\n";
  json += "  \"ranges\": " + std::to_string(ranges) + ",\n";
  json += "  \"configs\": [\n";

  std::printf("%-18s %-14s %10s %10s %10s\n", "config", "arm", "min(ms)",
              "median(ms)", "speedup");
  bool first = true;
  double min_gate_speedup = 1e30;  // batch-vs-scalar on gated configs
  for (const auto& cfg : configs) {
    // Bulk load both layouts from the same sorted entries: key = i / dup.
    std::vector<BPlusTree<int64_t>::Entry> entries;
    std::vector<BPlusTreeRef<int64_t>::Entry> ref_entries;
    entries.reserve(cfg.entries);
    ref_entries.reserve(cfg.entries);
    for (size_t i = 0; i < cfg.entries; ++i) {
      int64_t k = static_cast<int64_t>(i / dup);
      entries.push_back({k, static_cast<RowId>(i)});
      ref_entries.push_back({k, static_cast<RowId>(i)});
    }
    BPlusTree<int64_t>::Options opts;
    opts.page_bytes = cfg.page_bytes;
    BPlusTreeRef<int64_t>::Options ref_opts;
    ref_opts.page_bytes = cfg.page_bytes;
    BPlusTree<int64_t> tree(opts);
    BPlusTreeRef<int64_t> ref(ref_opts);
    tree.BulkLoad(entries);
    ref.BulkLoad(ref_entries);

    // Uniform random probe keys: no locality, so descents miss cache on the
    // big configs and the pipelined prefetch has latency to hide.
    const int64_t max_key = static_cast<int64_t>(cfg.entries / dup) - 1;
    Rng rng(42);
    std::vector<int64_t> probe_keys;
    probe_keys.reserve(lookups);
    for (size_t i = 0; i < lookups; ++i) {
      probe_keys.push_back(rng.UniformInt(0, max_key));
    }
    std::vector<std::pair<int64_t, int64_t>> probe_ranges;
    probe_ranges.reserve(ranges);
    for (size_t i = 0; i < ranges; ++i) {
      int64_t lo = rng.UniformInt(0, max_key);
      probe_ranges.push_back(
          {lo, std::min<int64_t>(max_key, lo + range_width - 1)});
    }

    // Lookup arms. ref_lookup carries the old layout's full probe cost,
    // std::vector allocation included — that is what the API used to do.
    auto run_ref = [&] {
      uint64_t sum = 0;
      for (int64_t k : probe_keys) {
        for (RowId r : ref.Lookup(k)) sum = Fold(sum, k, r);
      }
      return sum;
    };
    auto run_scalar = [&] {
      uint64_t sum = 0;
      for (int64_t k : probe_keys) {
        tree.Lookup(k, [&sum](const int64_t& key, RowId r) {
          sum = Fold(sum, key, r);
        });
      }
      return sum;
    };
    auto run_batch = [&](size_t group) {
      uint64_t sum = 0;
      tree.LookupBatch(
          std::span<const int64_t>(probe_keys),
          [&sum](size_t, const int64_t& key, RowId r) {
            sum = Fold(sum, key, r);
          },
          group);
      return sum;
    };

    const uint64_t want = run_scalar();  // warm + reference checksum
    Stats ref_stats = TimeArm("ref_lookup", want, reps, run_ref);
    Stats scalar_stats = TimeArm("arena_scalar", want, reps, run_scalar);
    std::vector<Stats> batch_stats;
    for (size_t g : groups) {
      char label[32];
      std::snprintf(label, sizeof(label), "batch%zu", g);
      batch_stats.push_back(
          TimeArm(label, want, reps, [&] { return run_batch(g); }));
    }
    double batch_best = 1e30;
    for (const auto& s : batch_stats) {
      batch_best = std::min(batch_best, s.median_ms);
    }
    double batch_speedup =
        batch_best > 0 ? scalar_stats.median_ms / batch_best : 0;
    double layout_speedup =
        batch_best > 0 ? ref_stats.median_ms / batch_best : 0;
    if (fast || cfg.llc_exceeding) {
      min_gate_speedup = std::min(min_gate_speedup, batch_speedup);
    }

    // Range arms: template visitor ScanRange vs the reference, plus the
    // grouped ScanRangeBatch.
    auto run_ref_scan = [&] {
      uint64_t sum = 0;
      for (const auto& [lo, hi] : probe_ranges) {
        ref.ScanRange(lo, hi, [&sum](const int64_t& key, RowId r) {
          sum = Fold(sum, key, r);
        });
      }
      return sum;
    };
    auto run_scan = [&] {
      uint64_t sum = 0;
      for (const auto& [lo, hi] : probe_ranges) {
        tree.ScanRange(lo, hi, [&sum](const int64_t& key, RowId r) {
          sum = Fold(sum, key, r);
        });
      }
      return sum;
    };
    auto run_scan_batch = [&] {
      uint64_t sum = 0;
      tree.ScanRangeBatch(
          std::span<const std::pair<int64_t, int64_t>>(probe_ranges),
          [&sum](size_t, const int64_t& key, RowId r) {
            sum = Fold(sum, key, r);
          });
      return sum;
    };
    const uint64_t scan_want = run_scan();
    Stats ref_scan_stats = TimeArm("ref_scan", scan_want, reps, run_ref_scan);
    Stats scan_stats = TimeArm("arena_scan", scan_want, reps, run_scan);
    Stats scan_batch_stats =
        TimeArm("scan_batch", scan_want, reps, run_scan_batch);

    char label[64];
    std::snprintf(label, sizeof(label), "%zuk pg%zu",
                  cfg.entries / 1024, cfg.page_bytes);
    std::printf("%-18s %-14s %10.3f %10.3f\n", label, "ref_lookup",
                ref_stats.min_ms, ref_stats.median_ms);
    std::printf("%-18s %-14s %10.3f %10.3f\n", "", "arena_scalar",
                scalar_stats.min_ms, scalar_stats.median_ms);
    for (size_t i = 0; i < groups.size(); ++i) {
      char arm[32];
      std::snprintf(arm, sizeof(arm), "batch%zu", groups[i]);
      double sp = batch_stats[i].median_ms > 0
                      ? scalar_stats.median_ms / batch_stats[i].median_ms
                      : 0;
      std::printf("%-18s %-14s %10.3f %10.3f %9.2fx\n", "", arm,
                  batch_stats[i].min_ms, batch_stats[i].median_ms, sp);
    }
    std::printf("%-18s %-14s %10.3f %10.3f\n", "", "ref_scan",
                ref_scan_stats.min_ms, ref_scan_stats.median_ms);
    std::printf("%-18s %-14s %10.3f %10.3f\n", "", "arena_scan",
                scan_stats.min_ms, scan_stats.median_ms);
    std::printf("%-18s %-14s %10.3f %10.3f %9.2fx\n", "", "scan_batch",
                scan_batch_stats.min_ms, scan_batch_stats.median_ms,
                scan_stats.median_ms > 0 && scan_batch_stats.median_ms > 0
                    ? scan_stats.median_ms / scan_batch_stats.median_ms
                    : 0);

    if (!first) json += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"entries\": %zu, \"page_bytes\": %zu, "
                  "\"llc_exceeding\": %s, \"height\": %d,\n",
                  cfg.entries, cfg.page_bytes,
                  cfg.llc_exceeding ? "true" : "false", tree.height());
    json += buf;
    AppendStats(&json, "ref_lookup", ref_stats);
    json += ",\n";
    AppendStats(&json, "arena_scalar", scalar_stats);
    json += ",\n";
    for (size_t i = 0; i < groups.size(); ++i) {
      char arm[32];
      std::snprintf(arm, sizeof(arm), "batch%zu", groups[i]);
      AppendStats(&json, arm, batch_stats[i]);
      json += ",\n";
    }
    AppendStats(&json, "ref_scan", ref_scan_stats);
    json += ",\n";
    AppendStats(&json, "arena_scan", scan_stats);
    json += ",\n";
    AppendStats(&json, "scan_batch", scan_batch_stats);
    json += ",\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"checksum\": %llu, \"batch_speedup_median\": %.3f, "
                  "\"layout_speedup_median\": %.3f\n    }",
                  static_cast<unsigned long long>(want), batch_speedup,
                  layout_speedup);
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  const char* check = std::getenv("DFIM_BENCH_CHECK");
  if (check != nullptr && check[0] == '1') {
    const double gate = fast ? 0.7 : 1.5;
    if (min_gate_speedup < gate) {
      std::fprintf(stderr,
                   "BENCH CHECK FAILED: min batched-lookup speedup %.3fx "
                   "(must be >= %.1fx%s)\n",
                   min_gate_speedup, gate,
                   fast ? ", fast-mode sanity floor"
                        : " on LLC-exceeding trees");
      return 1;
    }
    std::printf("bench check ok: min batched-lookup speedup %.3fx (gate "
                "%.1fx)\n",
                min_gate_speedup, gate);
  }
  return 0;
}
