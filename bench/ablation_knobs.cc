// Ablation study over the design knobs DESIGN.md calls out: the time-money
// weight alpha, the fading controller D, the storage window W, the deletion
// grace period, the interleaving algorithm and the skyline width. Each row
// runs the Gain policy on the same phase workload, varying one knob.

#include <cstdio>
#include <functional>
#include <string>

#include "service_experiment.h"

namespace dfim {
namespace {

using Mutator = std::function<void(ServiceOptions*)>;

void RunConfig(const std::string& label, Seconds horizon, const Mutator& mutate) {
  Catalog catalog;
  FileDatabase db(&catalog, FileDatabaseOptions{});
  if (!db.Populate().ok()) std::abort();
  DataflowGenerator gen(&db, 23);
  double f = horizon / (720.0 * 60.0);
  std::vector<WorkloadPhase> phases;
  for (auto& ph : PhaseWorkloadClient::PaperPhases(60.0)) {
    phases.push_back({ph.app, ph.duration * f});
  }
  PhaseWorkloadClient client(&gen, 60.0, phases, 23);

  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kGain);
  so.total_time = horizon;
  so.seed = 23;
  mutate(&so);
  QaasService service(&catalog, so);
  auto m = service.Run(&client);
  if (!m.ok()) {
    std::printf("%-28s FAILED: %s\n", label.c_str(),
                m.status().ToString().c_str());
    return;
  }
  PricingModel pricing;
  std::printf("%-28s %8d %10.2f %10.2f %8d %8d\n", label.c_str(),
              m->dataflows_finished, m->AvgCostQuantaPerDataflow(pricing),
              m->AvgTimeQuantaPerDataflow(), m->index_partitions_built,
              m->indexes_deleted);
}

}  // namespace
}  // namespace dfim

int main() {
  using namespace dfim;
  bench::Header("Ablation -- tuning knobs on the phase workload (Gain policy)");
  Seconds horizon = (bench::FastMode() ? 120.0 : 360.0) * 60.0;
  std::printf("\nHorizon %.0f quanta.\n", horizon / 60.0);
  std::printf("%-28s %8s %10s %10s %8s %8s\n", "Config", "#DFs", "Cost/DF(q)",
              "Time/DF(q)", "Built", "Deleted");

  RunConfig("baseline (Table 3)", horizon, [](ServiceOptions*) {});

  // alpha: how much a time quantum is valued vs money (Eq. 1-3).
  RunConfig("alpha = 0.1 (money-first)", horizon, [](ServiceOptions* so) {
    so->tuner.gain.alpha = 0.1;
  });
  RunConfig("alpha = 0.9 (time-first)", horizon, [](ServiceOptions* so) {
    so->tuner.gain.alpha = 0.9;
  });

  // D: the gain fading controller.
  RunConfig("D = 0.25 quanta", horizon, [](ServiceOptions* so) {
    so->tuner.gain.fade_d_quanta = 0.25;
  });
  RunConfig("D = 10 quanta", horizon, [](ServiceOptions* so) {
    so->tuner.gain.fade_d_quanta = 10.0;
  });

  // W: the storage window charged when assessing an index.
  RunConfig("W = 20 quanta", horizon, [](ServiceOptions* so) {
    so->tuner.gain.storage_window_quanta = 20.0;
  });
  RunConfig("W = 200 quanta", horizon, [](ServiceOptions* so) {
    so->tuner.gain.storage_window_quanta = 200.0;
  });

  // Deletion grace.
  RunConfig("grace = 10 quanta", horizon, [](ServiceOptions* so) {
    so->deletion_grace_quanta = 10.0;
  });
  RunConfig("grace = off (never del.)", horizon, [](ServiceOptions* so) {
    so->policy = IndexPolicy::kGainNoDelete;
  });

  // Interleaving algorithm.
  RunConfig("online interleaving", horizon, [](ServiceOptions* so) {
    so->tuner.mode = InterleaveMode::kOnline;
  });

  // Skyline width.
  RunConfig("skyline cap = 2", horizon, [](ServiceOptions* so) {
    so->tuner.sched.skyline_cap = 2;
  });
  RunConfig("skyline cap = 8", horizon, [](ServiceOptions* so) {
    so->tuner.sched.skyline_cap = 8;
  });

  // Paper future-work extensions.
  RunConfig("resumable builds", horizon, [](ServiceOptions* so) {
    so->resumable_builds = true;
  });
  RunConfig("adaptive fading D", horizon, [](ServiceOptions* so) {
    so->tuner.gain.adaptive_fading = true;
  });

  bench::Note("Expected: time-first alpha builds more aggressively; tiny D "
              "or tiny grace cause churn; huge W suppresses big indexes; "
              "online interleaving builds fewer indexes per dataflow.");
  return 0;
}
