// Reproduces Figure 9: the timeline of a Montage dataflow interleaved with
// build-index operators by the LP algorithm ('#' dataflow ops, '+' build
// ops, '.' idle), and the fragmentation before/after interleaving (the
// paper reports 7.14 -> 1.6 quanta).

#include <cstdio>

#include "bench_util.h"
#include "core/interleave.h"
#include "core/tuner.h"
#include "dataflow/build_index_ops.h"

int main() {
  using namespace dfim;
  bench::Header("Figure 9 -- dataflow interleaved with build index ops (LP)");
  auto setup = std::make_unique<bench::PaperSetup>(7);
  SchedulerOptions so = bench::PaperSchedulerOptions();

  // The paper draws Montage here, but our Montage files (Table 4: <= 4 MB)
  // yield sub-second build ops that are invisible at quantum resolution;
  // Cybershake's 128 MB partitions give build ops of the size the paper's
  // green blocks show, so the figure uses a Cybershake dataflow.
  Dataflow df = setup->generator->Generate(AppType::kCybershake, 0, 0);
  Dag combined = df.dag;
  int next_id = static_cast<int>(combined.num_ops());
  for (const auto& idx : df.candidate_indexes) {
    auto ops = MakeBuildIndexOps(setup->catalog, idx, so.net_mb_per_sec,
                                 &next_id);
    if (!ops.ok()) continue;
    for (auto& op : *ops) {
      op.gain = 1.0;
      combined.AddOperator(std::move(op));
    }
  }
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  BuildDataflowCosts(combined, df, setup->catalog, so.net_mb_per_sec,
                     &durations, &costs);

  Interleaver none(so, InterleaveMode::kNone);
  Interleaver lp(so, InterleaveMode::kLp);
  auto bare = none.Interleave(combined, durations);
  auto packed = lp.Interleave(combined, durations);
  if (!bare.ok() || !packed.ok()) {
    std::printf("scheduling failed\n");
    return 1;
  }
  const Schedule& before = bare->front();
  const Schedule& after = packed->front();

  std::printf("\nDataflow-only schedule ('#' ops, '.' idle):\n%s",
              before.ToAscii(so.quantum, 96).c_str());
  std::printf("\nWith LP-interleaved build ops ('+'):\n%s",
              after.ToAscii(so.quantum, 96).c_str());

  double idle_before = before.TotalIdle(so.quantum) / so.quantum;
  double idle_after = after.TotalIdle(so.quantum) / so.quantum;
  std::printf(
      "\nFragmentation: %.2f quanta before -> %.2f quanta after interleaving"
      "  (paper: 7.14 -> 1.6)\n",
      idle_before, idle_after);
  std::printf("Makespan %.1f s, %lld leased quanta on %d containers "
              "(unchanged by interleaving).\n",
              after.makespan(),
              static_cast<long long>(after.LeasedQuanta(so.quantum)),
              after.num_containers());
  return 0;
}
