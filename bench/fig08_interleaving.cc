// Reproduces Figure 8: the number of build-index operators scheduled at
// each point of the skyline for the Montage dataflow, comparing the LP
// interleaving algorithm against the online interleaving algorithm.

#include <cstdio>

#include "bench_util.h"
#include "core/interleave.h"
#include "core/tuner.h"
#include "dataflow/build_index_ops.h"

namespace dfim {
namespace {

int CountBuilds(const Schedule& s) {
  int n = 0;
  for (const auto& a : s.assignments()) n += a.optional ? 1 : 0;
  return n;
}

}  // namespace
}  // namespace dfim

int main() {
  using namespace dfim;
  bench::Header("Figure 8 -- build ops scheduled per skyline point");
  auto setup = std::make_unique<bench::PaperSetup>(7);
  SchedulerOptions so = bench::PaperSchedulerOptions();
  so.skyline_cap = 8;  // more skyline points for the figure

  // The paper plots Montage, but our Montage candidate builds are so small
  // (files <= 4 MB) that both algorithms trivially schedule all of them;
  // Cybershake's partition builds contend for slot space and expose the
  // LP-vs-online gap the paper shows.
  Dataflow df = setup->generator->Generate(AppType::kCybershake, 0, 0);
  // Candidate build ops: every partition of every candidate index.
  Dag combined = df.dag;
  int next_id = static_cast<int>(combined.num_ops());
  int added = 0;
  for (const auto& idx : df.candidate_indexes) {
    auto ops = MakeBuildIndexOps(setup->catalog, idx, so.net_mb_per_sec,
                                 &next_id);
    if (!ops.ok()) continue;
    for (auto& op : *ops) {
      op.gain = 1.0;  // uniform usefulness, as in the figure
      combined.AddOperator(std::move(op));
      ++added;
    }
  }
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  BuildDataflowCosts(combined, df, setup->catalog, so.net_mb_per_sec,
                     &durations, &costs);
  std::printf("\nMontage: %zu dataflow ops, %d candidate build ops\n",
              df.dag.num_ops(), added);

  for (auto mode : {InterleaveMode::kOnline, InterleaveMode::kLp}) {
    Interleaver il(so, mode);
    auto skyline = il.Interleave(combined, durations);
    if (!skyline.ok()) {
      std::printf("error: %s\n", skyline.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s interleaving:\n",
                mode == InterleaveMode::kLp ? "LP" : "Online");
    std::printf("%18s %14s %10s\n", "Money (quanta)", "Time (s)", "#Builds");
    for (const auto& s : *skyline) {
      std::printf("%18lld %14.1f %10d\n",
                  static_cast<long long>(s.LeasedQuanta(so.quantum)),
                  s.makespan(), CountBuilds(s));
    }
  }
  bench::Note("Paper shape: LP schedules significantly more build ops than "
              "online at comparable money.");
  return 0;
}
