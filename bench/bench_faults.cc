// Fault-injection sweep: runs the Gain policy on the paper's Montage
// workload under increasing container crash rates (plus a straggler-heavy
// and a storage-fault-heavy arm), and writes BENCH_faults.json recording
// throughput, failure counters, and recovery cost per arm. The point is
// graceful degradation: rising fault rates may slow the service and fail
// some dataflows, but every dataflow stays accounted for and the catalog
// never references an unpersisted partition.
//
// A second sweep measures tail tolerance (DESIGN.md §9): speculation
// on/off across straggler rates, plus a hedged-reads pair, on a
// fixed-count workload so both arms of each pair run the exact same
// dataflow sequence. Self-checked: speculation/hedging must cut the p50
// and p99 makespan at non-trivial fault rates while `total_vm_quanta`
// stays identical — tail latency bought with quanta already paid for.
//
// Usage: bench_faults [output.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"

namespace dfim {
namespace {

struct Arm {
  std::string name;
  FaultOptions faults;
};

struct ArmResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  int accounting_slack = 0;
};

// Catalog ⊆ storage: a crash-lost or corruption-dropped partition must never
// keep a catalog entry claiming it is built (recovery semantics, DESIGN.md).
bool CatalogStorageConsistent(const Catalog& catalog,
                              const QaasService& service) {
  for (const auto& idx : catalog.IndexIds()) {
    auto def = catalog.GetIndexDef(idx);
    auto state = catalog.GetIndexState(idx);
    if (!def.ok() || !state.ok()) continue;
    for (size_t p = 0; p < (*state)->num_partitions(); ++p) {
      if ((*state)->part(p).built &&
          !service.storage().Exists(
              (*def)->PartitionPath(static_cast<int>(p)))) {
        return false;
      }
    }
  }
  return true;
}

ArmResult RunArm(const Arm& arm, Seconds horizon, uint64_t seed) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kGain);
  so.total_time = horizon;
  so.faults = arm.faults;
  so.seed = seed;
  QaasService service(&setup.catalog, so);
  PhaseWorkloadClient client(setup.generator.get(), 60.0,
                             {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  ArmResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.accounting_slack = m->dataflows_arrived - m->dataflows_finished -
                       m->dataflows_failed - m->dataflows_overran;
  r.consistent = CatalogStorageConsistent(setup.catalog, service);
  return r;
}

// ---- Corruption / integrity sweep -------------------------------------------

struct IntegrityArm {
  std::string name;
  double torn = 0;
  double bitrot = 0;
  bool repair = false;
};

struct IntegrityResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  int still_quarantined = 0;
  /// Zero-slack corruption ledger residue (must be exactly 0):
  ///   injected - detected_on_read - detected_by_scrub - dead - latent.
  int64_t ledger_slack = 0;
  /// Zero-slack quarantine ledger residue (must be exactly 0):
  ///   quarantined - repairs_completed - evicted - still_quarantined.
  int64_t quarantine_slack = 0;
};

IntegrityResult RunIntegrityArm(const IntegrityArm& arm, Seconds horizon,
                                uint64_t seed) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kGain);
  so.total_time = horizon;
  so.faults.torn_write_rate = arm.torn;
  so.faults.bitrot_rate = arm.bitrot;
  so.faults.seed = 17;
  so.integrity.verify_reads = true;
  so.integrity.verify_latency = 1.0;
  so.integrity.scrub_objects_per_quantum = 2.0;
  so.integrity.repair = arm.repair;
  so.seed = seed;
  QaasService service(&setup.catalog, so);
  PhaseWorkloadClient client(setup.generator.get(), 60.0,
                             {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "integrity arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  IntegrityResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.still_quarantined = static_cast<int>(setup.catalog.quarantined().size());
  r.ledger_slack = m->corruptions_injected - m->corruptions_detected_on_read -
                   m->corruptions_detected_by_scrub - m->corruptions_dead -
                   m->corruptions_latent;
  r.quarantine_slack = m->partitions_quarantined - m->repairs_completed -
                       m->quarantine_evicted - r.still_quarantined;
  r.consistent = CatalogStorageConsistent(setup.catalog, service);
  return r;
}

// ---- Control-plane recovery sweep (DESIGN.md §15) ---------------------------

struct RecoveryArmResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  /// Zero-slack journal record ledger residue (must be exactly 0):
  ///   written - replayed - truncated - tail_discarded - live.
  int64_t ledger_slack = 0;
  int64_t generation = 0;
};

RecoveryArmResult RunRecoveryArm(bool journal, double ctl_rate,
                                 Seconds horizon, uint64_t seed) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kGain);
  so.total_time = horizon;
  so.faults.seed = 17;
  so.journal.enabled = journal;
  so.faults.ctl_crash_rate = ctl_rate;
  so.seed = seed;
  QaasService service(&setup.catalog, so);
  PhaseWorkloadClient client(setup.generator.get(), 60.0,
                             {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "recovery arm (journal=%d rate=%.3f) failed: %s\n",
                 journal ? 1 : 0, ctl_rate, m.status().ToString().c_str());
    std::exit(1);
  }
  RecoveryArmResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.ledger_slack = service.journal().LedgerSlack();
  r.generation = service.journal().generation();
  r.consistent = CatalogStorageConsistent(setup.catalog, service);
  return r;
}

// ---- Tail-tolerance sweep ---------------------------------------------------

/// Issues exactly `count` dataflows, ignoring the service horizon: both arms
/// of a speculation on/off pair then execute the identical dataflow
/// sequence, which is what makes the vm-quanta equality check exact.
class FixedCountClient : public WorkloadClient {
 public:
  FixedCountClient(DataflowGenerator* gen, int count, uint64_t seed)
      : inner_(gen, 60.0, {{AppType::kMontage, 1e9}}, seed), left_(count) {}

  std::optional<Dataflow> Next(Seconds not_before, Seconds) override {
    if (left_ <= 0) return std::nullopt;
    --left_;
    return inner_.Next(not_before, std::numeric_limits<double>::max());
  }

 private:
  PhaseWorkloadClient inner_;
  int left_;
};

struct TailArm {
  std::string name;
  FaultOptions faults;
  SpeculationOptions spec;
};

struct TailResult {
  ServiceMetrics m;
  double p50 = 0;
  double p99 = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

TailResult RunTailArm(const TailArm& arm, int count, uint64_t seed) {
  bench::PaperSetup setup(seed);
  // kNoIndex keeps the planner feedback-free: per-dataflow plans depend
  // only on the dataflow itself, so speculation cannot change what is
  // scheduled — only how fast it finishes.
  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kNoIndex);
  so.total_time = 1e12;  // the fixed-count client decides when to stop
  // Cache-less containers: cache warmth otherwise couples one dataflow's
  // finish time to the next one's read volume (container reuse is
  // wall-clock based), which would blur the per-pair vm-quanta equality
  // this sweep asserts exactly.
  so.container.disk = 0;
  so.faults = arm.faults;
  so.speculation = arm.spec;
  so.seed = seed;
  QaasService service(&setup.catalog, so);
  FixedCountClient client(setup.generator.get(), count, seed);
  auto m = service.Run(&client);
  if (!m.ok()) {
    std::fprintf(stderr, "tail arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  TailResult r;
  r.m = *m;
  std::vector<double> makespans;
  makespans.reserve(m->timeline.size());
  for (const auto& pt : m->timeline) makespans.push_back(pt.makespan_quanta);
  r.p50 = Percentile(makespans, 0.5);
  r.p99 = Percentile(makespans, 0.99);
  return r;
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  const bool fast = bench::FastMode();
  // Fast mode shrinks the horizon so the whole sweep runs in seconds.
  const Seconds horizon = (fast ? 120.0 : 720.0) * 60.0;
  const uint64_t seed = 7;

  std::vector<Arm> arms;
  for (double rate : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    Arm a;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "crash_%.3f", rate);
    a.name = buf;
    a.faults.crash_rate = rate;
    a.faults.seed = 17;
    arms.push_back(a);
  }
  {
    Arm a;
    a.name = "stragglers_0.3";
    a.faults.straggler_rate = 0.3;
    a.faults.seed = 17;
    arms.push_back(a);
    Arm b;
    b.name = "storage_0.1";
    b.faults.storage_fault_rate = 0.1;
    b.faults.seed = 17;
    arms.push_back(b);
  }

  bench::Header("Fault-injection sweep (Gain policy, Montage, " +
                std::to_string(static_cast<int>(horizon / 60.0)) + " quanta)");
  std::printf("%-16s %8s %8s %8s %8s %10s %10s %10s %9s %6s\n", "arm",
              "finished", "failed", "crashes", "reexec", "rec.quanta",
              "vm.quanta", "avg.tq/df", "slack", "ok?");

  std::string json = "{\n  \"bench\": \"faults\",\n";
  json += "  \"policy\": \"gain\",\n  \"workload\": \"montage\",\n";
  json += "  \"horizon_quanta\": " +
          std::to_string(static_cast<int>(horizon / 60.0)) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n  \"arms\": [\n";

  bool all_ok = true;
  ServiceMetrics fault_free;  // the crash_0.000 arm, kept as ground truth
  for (size_t i = 0; i < arms.size(); ++i) {
    ArmResult r = RunArm(arms[i], horizon, seed);
    if (i == 0) fault_free = r.m;
    const ServiceMetrics& m = r.m;
    bool ok = r.consistent && r.accounting_slack >= 0 &&
              r.accounting_slack <= 1;
    all_ok = all_ok && ok;
    std::printf("%-16s %8d %8d %8d %8d %10lld %10lld %10.2f %9d %6s\n",
                arms[i].name.c_str(), m.dataflows_finished, m.dataflows_failed,
                m.containers_failed, m.ops_reexecuted,
                static_cast<long long>(m.recovery_quanta),
                static_cast<long long>(m.total_vm_quanta),
                m.AvgTimeQuantaPerDataflow(), r.accounting_slack,
                ok ? "yes" : "NO");

    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"crash_rate\": %.4f, "
        "\"straggler_rate\": %.4f, \"storage_fault_rate\": %.4f,\n"
        "     \"dataflows_arrived\": %d, \"dataflows_finished\": %d, "
        "\"dataflows_failed\": %d, \"dataflows_overran\": %d,\n"
        "     \"containers_failed\": %d, \"ops_reexecuted\": %d, "
        "\"recovery_quanta\": %lld, \"storage_retries\": %d, "
        "\"storage_faults\": %d, \"builds_discarded\": %d,\n"
        "     \"total_vm_quanta\": %lld, \"avg_time_quanta_per_dataflow\": "
        "%.4f, \"index_partitions_built\": %d,\n"
        "     \"accounting_slack\": %d, \"catalog_storage_consistent\": %s, "
        "\"wall_ms\": %.1f}",
        arms[i].name.c_str(), arms[i].faults.crash_rate,
        arms[i].faults.straggler_rate, arms[i].faults.storage_fault_rate,
        m.dataflows_arrived, m.dataflows_finished, m.dataflows_failed,
        m.dataflows_overran, m.containers_failed, m.ops_reexecuted,
        static_cast<long long>(m.recovery_quanta), m.storage_retries,
        m.storage_faults, m.builds_discarded,
        static_cast<long long>(m.total_vm_quanta),
        m.AvgTimeQuantaPerDataflow(), m.index_partitions_built,
        r.accounting_slack, r.consistent ? "true" : "false", r.wall_ms);
    json += buf;
    json += (i + 1 < arms.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";

  // ---- Tail-tolerance sweep: speculation/hedging on vs off. ----------------
  const int tail_count = fast ? 30 : 80;
  std::vector<std::pair<TailArm, TailArm>> pairs;
  for (double rate : {0.0, 0.1, 0.2, 0.3}) {
    TailArm off;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "straggler_%.1f", rate);
    off.name = buf;
    off.faults.straggler_rate = rate;
    off.faults.straggler_slowdown_min = 2.0;
    off.faults.straggler_slowdown_max = 3.0;
    off.faults.seed = 17;
    TailArm on = off;
    on.spec.speculate = true;
    on.spec.spec_slowdown_threshold = 1.5;
    pairs.emplace_back(off, on);
  }
  {
    TailArm off;
    off.name = "storage_hedge_0.2";
    off.faults.storage_fault_rate = 0.2;
    off.faults.storage_fault_latency = 30.0;
    off.faults.seed = 17;
    TailArm on = off;
    on.spec.hedge_reads = true;
    on.spec.hedge_after = 5.0;
    pairs.emplace_back(off, on);
  }

  bench::Header("Tail tolerance: speculation/hedging, " +
                std::to_string(tail_count) + " fixed dataflows (kNoIndex)");
  std::printf("%-18s %9s %9s %9s %9s %10s %6s %6s %7s %7s\n", "pair",
              "p50.off", "p50.on", "p99.off", "p99.on", "vm.quanta", "spec",
              "wins", "hedges", "equal?");

  json += "  \"speculation\": [\n";
  for (size_t i = 0; i < pairs.size(); ++i) {
    TailResult off = RunTailArm(pairs[i].first, tail_count, seed);
    TailResult on = RunTailArm(pairs[i].second, tail_count, seed);
    const bool stragglers = pairs[i].second.spec.speculate;
    const double rate = stragglers ? pairs[i].first.faults.straggler_rate
                                   : pairs[i].first.faults.storage_fault_rate;
    // The contract: tail tolerance may never cost a single extra quantum,
    // and must not hurt the tail; at non-trivial fault rates it must help.
    bool ok = on.m.total_vm_quanta == off.m.total_vm_quanta &&
              on.p50 <= off.p50 + 1e-9 && on.p99 <= off.p99 + 1e-9;
    if (rate >= 0.1) {
      ok = ok && on.p99 < off.p99 - 1e-9 &&
           (stragglers ? on.m.spec_wins > 0 : on.m.hedge_wins > 0);
    } else {
      // Nothing to speculate on: bit-identical, with idle counters.
      ok = ok && on.p50 == off.p50 && on.p99 == off.p99 &&
           on.m.ops_speculated == 0 && on.m.hedged_reads == 0;
    }
    all_ok = all_ok && ok;
    std::printf("%-18s %9.2f %9.2f %9.2f %9.2f %10lld %6d %6d %7d %7s\n",
                pairs[i].first.name.c_str(), off.p50, on.p50, off.p99, on.p99,
                static_cast<long long>(on.m.total_vm_quanta),
                on.m.ops_speculated, on.m.spec_wins, on.m.hedged_reads,
                ok ? "yes" : "NO");
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"pair\": \"%s\", \"rate\": %.2f, \"dataflows\": %d,\n"
        "     \"p50_off\": %.4f, \"p50_on\": %.4f, \"p99_off\": %.4f, "
        "\"p99_on\": %.4f,\n"
        "     \"vm_quanta_off\": %lld, \"vm_quanta_on\": %lld, "
        "\"ops_speculated\": %d, \"spec_wins\": %d, \"spec_cancelled\": %d,\n"
        "     \"hedged_reads\": %d, \"hedge_wins\": %d, \"ok\": %s}",
        pairs[i].first.name.c_str(), rate, tail_count, off.p50, on.p50,
        off.p99, on.p99, static_cast<long long>(off.m.total_vm_quanta),
        static_cast<long long>(on.m.total_vm_quanta), on.m.ops_speculated,
        on.m.spec_wins, on.m.spec_cancelled, on.m.hedged_reads,
        on.m.hedge_wins, ok ? "true" : "false");
    json += buf;
    json += (i + 1 < pairs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";

  // ---- Corruption sweep: repair off vs on at each corruption rate. ---------
  std::vector<std::pair<IntegrityArm, IntegrityArm>> ipairs;
  for (double torn : {0.0, 0.2, 0.4}) {
    IntegrityArm off;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "corrupt_%.1f", torn);
    off.name = buf;
    off.torn = torn;
    off.bitrot = torn > 0 ? 0.002 : 0.0;
    off.repair = false;
    IntegrityArm on = off;
    on.repair = true;
    ipairs.emplace_back(off, on);
  }

  bench::Header("Integrity: corruption sweep, repair off vs on (Gain)");
  std::printf("%-14s %8s %8s %8s %8s %8s %9s %9s %6s\n", "pair", "inject",
              "quarant", "repairs", "fin.off", "fin.on", "vm.off", "vm.on",
              "ok?");

  json += "  \"integrity\": [\n";
  for (size_t i = 0; i < ipairs.size(); ++i) {
    IntegrityResult off = RunIntegrityArm(ipairs[i].first, horizon, seed);
    IntegrityResult on = RunIntegrityArm(ipairs[i].second, horizon, seed);
    // Both arms must balance their ledgers exactly and keep the catalog a
    // subset of storage — corruption degrades, it never lies.
    bool ok = off.ledger_slack == 0 && on.ledger_slack == 0 &&
              off.quarantine_slack == 0 && on.quarantine_slack == 0 &&
              off.consistent && on.consistent;
    if (ipairs[i].first.torn > 0) {
      // Corruption actually flows: injections, quarantines, and (repair-on
      // only) completed repair builds.
      ok = ok && off.m.corruptions_injected > 0 &&
           off.m.partitions_quarantined > 0 && on.m.repairs_completed > 0 &&
           off.m.repairs_scheduled == 0;
      // Repair must pay for itself: goodput per vm-quantum with repair on is
      // at least the repair-off rate (repair builds ride already-paid idle
      // slots, and healed partitions serve index reads again). Full horizon
      // only — the 120-quantum fast smoke is too short to amortize a
      // rebuild, exactly like index builds themselves (§5 calibration).
      if (!fast) {
        ok = ok && static_cast<double>(on.m.dataflows_finished) *
                           static_cast<double>(off.m.total_vm_quanta) >=
                       static_cast<double>(off.m.dataflows_finished) *
                           static_cast<double>(on.m.total_vm_quanta);
      }
    } else {
      // Nothing to corrupt: the repair knob must be arithmetically
      // invisible — both arms bit-identical, all corruption counters zero.
      ok = ok && off.m.corruptions_injected == 0 &&
           off.m.partitions_quarantined == 0 &&
           on.m.dataflows_finished == off.m.dataflows_finished &&
           on.m.total_vm_quanta == off.m.total_vm_quanta &&
           on.m.total_time_quanta == off.m.total_time_quanta &&
           on.m.storage_cost == off.m.storage_cost;
    }
    all_ok = all_ok && ok;
    std::printf("%-14s %8lld %8d %8d %8d %8d %9lld %9lld %6s\n",
                ipairs[i].first.name.c_str(),
                static_cast<long long>(on.m.corruptions_injected),
                on.m.partitions_quarantined, on.m.repairs_completed,
                off.m.dataflows_finished, on.m.dataflows_finished,
                static_cast<long long>(off.m.total_vm_quanta),
                static_cast<long long>(on.m.total_vm_quanta),
                ok ? "yes" : "NO");
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"pair\": \"%s\", \"torn_write_rate\": %.2f, "
        "\"bitrot_rate\": %.4f,\n"
        "     \"injected_off\": %lld, \"injected_on\": %lld, "
        "\"detected_on_read_on\": %d, \"detected_by_scrub_on\": %d, "
        "\"dead_on\": %lld, \"latent_on\": %lld,\n"
        "     \"quarantined_off\": %d, \"quarantined_on\": %d, "
        "\"repairs_completed_on\": %d, \"still_quarantined_off\": %d, "
        "\"still_quarantined_on\": %d,\n"
        "     \"finished_off\": %d, \"finished_on\": %d, "
        "\"vm_quanta_off\": %lld, \"vm_quanta_on\": %lld, "
        "\"scrub_reads_on\": %lld,\n"
        "     \"ledger_slack\": %lld, \"quarantine_slack\": %lld, "
        "\"catalog_storage_consistent\": %s, \"ok\": %s, "
        "\"wall_ms\": %.1f}",
        ipairs[i].first.name.c_str(), ipairs[i].first.torn,
        ipairs[i].first.bitrot,
        static_cast<long long>(off.m.corruptions_injected),
        static_cast<long long>(on.m.corruptions_injected),
        on.m.corruptions_detected_on_read, on.m.corruptions_detected_by_scrub,
        static_cast<long long>(on.m.corruptions_dead),
        static_cast<long long>(on.m.corruptions_latent),
        off.m.partitions_quarantined, on.m.partitions_quarantined,
        on.m.repairs_completed, off.still_quarantined, on.still_quarantined,
        off.m.dataflows_finished, on.m.dataflows_finished,
        static_cast<long long>(off.m.total_vm_quanta),
        static_cast<long long>(on.m.total_vm_quanta),
        static_cast<long long>(on.m.scrub_reads),
        static_cast<long long>(off.ledger_slack + on.ledger_slack),
        static_cast<long long>(off.quarantine_slack + on.quarantine_slack),
        off.consistent && on.consistent ? "true" : "false",
        ok ? "true" : "false", off.wall_ms + on.wall_ms);
    json += buf;
    json += (i + 1 < ipairs.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";

  // ---- Control-plane recovery: journal off / on / on + crashes. ------------
  // MTTR and journal overhead, self-checked: the off arm is bit-identical to
  // the fault-free baseline (the journal must be arithmetically absent when
  // disabled), both journaled arms balance the record ledger with zero
  // slack, and the crashed arm reproduces the uncrashed arm's results on
  // every pre-existing counter — recovery replay is exactly-once.
  const double ctl_rate = 0.01;
  RecoveryArmResult joff = RunRecoveryArm(false, 0.0, horizon, seed);
  RecoveryArmResult jon = RunRecoveryArm(true, 0.0, horizon, seed);
  RecoveryArmResult jcrash = RunRecoveryArm(true, ctl_rate, horizon, seed);

  const bool off_identical =
      joff.m.dataflows_finished == fault_free.dataflows_finished &&
      joff.m.dataflows_failed == fault_free.dataflows_failed &&
      joff.m.total_vm_quanta == fault_free.total_vm_quanta &&
      joff.m.total_time_quanta == fault_free.total_time_quanta &&
      joff.m.storage_cost == fault_free.storage_cost &&
      joff.m.index_partitions_built == fault_free.index_partitions_built &&
      joff.m.journal_records == 0 && joff.m.journal_bytes == 0;
  const bool on_balanced = jon.ledger_slack == 0 && jon.m.ctl_crashes == 0 &&
                           jon.m.journal_records > 0 && jon.consistent;
  const bool crash_exact =
      jcrash.ledger_slack == 0 && jcrash.m.ctl_crashes > 0 &&
      jcrash.generation == jcrash.m.replayed_records &&
      jcrash.m.dataflows_finished == jon.m.dataflows_finished &&
      jcrash.m.dataflows_failed == jon.m.dataflows_failed &&
      jcrash.m.total_vm_quanta == jon.m.total_vm_quanta &&
      jcrash.m.total_time_quanta == jon.m.total_time_quanta &&
      jcrash.m.storage_cost == jon.m.storage_cost &&
      jcrash.m.index_partitions_built == jon.m.index_partitions_built &&
      jcrash.consistent;
  all_ok = all_ok && off_identical && on_balanced && crash_exact;

  const double mttr = jcrash.m.ctl_crashes > 0
                          ? jcrash.m.recovery_replay_quanta /
                                static_cast<double>(jcrash.m.ctl_crashes)
                          : 0.0;
  bench::Header("Control-plane recovery: journal off / on / on + crashes");
  std::printf("%-14s %8s %9s %10s %8s %8s %9s %8s %6s\n", "arm", "finished",
              "jrecords", "jbytes", "crashes", "deduped", "replay.q",
              "wall.ms", "ok?");
  auto print_rec = [&](const char* name, const RecoveryArmResult& r, bool ok) {
    std::printf("%-14s %8d %9lld %10lld %8lld %8lld %9.2f %8.1f %6s\n", name,
                r.m.dataflows_finished,
                static_cast<long long>(r.m.journal_records),
                static_cast<long long>(r.m.journal_bytes),
                static_cast<long long>(r.m.ctl_crashes),
                static_cast<long long>(r.m.persists_deduped),
                r.m.recovery_replay_quanta, r.wall_ms, ok ? "yes" : "NO");
  };
  print_rec("journal_off", joff, off_identical);
  print_rec("journal_on", jon, on_balanced);
  print_rec("ctl_crash_0.01", jcrash, crash_exact);
  std::printf("mean replay cost per crash: %.2f quanta\n", mttr);

  json += "  \"recovery\": [\n";
  const RecoveryArmResult* recs[] = {&joff, &jon, &jcrash};
  const char* rec_names[] = {"journal_off", "journal_on", "ctl_crash_0.01"};
  const bool rec_ok[] = {off_identical, on_balanced, crash_exact};
  const double rec_rates[] = {0.0, 0.0, ctl_rate};
  for (int i = 0; i < 3; ++i) {
    const RecoveryArmResult& r = *recs[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"ctl_crash_rate\": %.3f,\n"
        "     \"dataflows_finished\": %d, \"dataflows_failed\": %d, "
        "\"total_vm_quanta\": %lld, \"index_partitions_built\": %d,\n"
        "     \"journal_records\": %lld, \"journal_bytes\": %lld, "
        "\"ctl_crashes\": %lld, \"replayed_records\": %lld, "
        "\"persists_deduped\": %lld,\n"
        "     \"recovery_replay_quanta\": %.4f, \"mttr_quanta\": %.4f, "
        "\"ledger_slack\": %lld, \"ok\": %s, \"wall_ms\": %.1f}",
        rec_names[i], rec_rates[i], r.m.dataflows_finished,
        r.m.dataflows_failed, static_cast<long long>(r.m.total_vm_quanta),
        r.m.index_partitions_built,
        static_cast<long long>(r.m.journal_records),
        static_cast<long long>(r.m.journal_bytes),
        static_cast<long long>(r.m.ctl_crashes),
        static_cast<long long>(r.m.replayed_records),
        static_cast<long long>(r.m.persists_deduped),
        r.m.recovery_replay_quanta,
        r.m.ctl_crashes > 0
            ? r.m.recovery_replay_quanta /
                  static_cast<double>(r.m.ctl_crashes)
            : 0.0,
        static_cast<long long>(r.ledger_slack), rec_ok[i] ? "true" : "false",
        r.wall_ms);
    json += buf;
    json += (i + 1 < 3) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return all_ok ? 0 : 1;
}
