// Fault-injection sweep: runs the Gain policy on the paper's Montage
// workload under increasing container crash rates (plus a straggler-heavy
// and a storage-fault-heavy arm), and writes BENCH_faults.json recording
// throughput, failure counters, and recovery cost per arm. The point is
// graceful degradation: rising fault rates may slow the service and fail
// some dataflows, but every dataflow stays accounted for and the catalog
// never references an unpersisted partition.
//
// Usage: bench_faults [output.json]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace dfim {
namespace {

struct Arm {
  std::string name;
  FaultOptions faults;
};

struct ArmResult {
  ServiceMetrics m;
  double wall_ms = 0;
  bool consistent = true;
  int accounting_slack = 0;
};

ArmResult RunArm(const Arm& arm, Seconds horizon, uint64_t seed) {
  bench::PaperSetup setup(seed);
  ServiceOptions so = bench::PaperServiceOptions(IndexPolicy::kGain);
  so.total_time = horizon;
  so.faults = arm.faults;
  so.seed = seed;
  QaasService service(&setup.catalog, so);
  PhaseWorkloadClient client(setup.generator.get(), 60.0,
                             {{AppType::kMontage, 1e9}}, seed);
  auto t0 = std::chrono::steady_clock::now();
  auto m = service.Run(&client);
  auto t1 = std::chrono::steady_clock::now();
  if (!m.ok()) {
    std::fprintf(stderr, "arm %s failed: %s\n", arm.name.c_str(),
                 m.status().ToString().c_str());
    std::exit(1);
  }
  ArmResult r;
  r.m = *m;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.accounting_slack = m->dataflows_arrived - m->dataflows_finished -
                       m->dataflows_failed - m->dataflows_overran;
  // Catalog ⊆ storage: a crash-lost partition must never have a catalog
  // entry (recovery semantics, DESIGN.md).
  for (const auto& idx : setup.catalog.IndexIds()) {
    auto def = setup.catalog.GetIndexDef(idx);
    auto state = setup.catalog.GetIndexState(idx);
    if (!def.ok() || !state.ok()) continue;
    for (size_t p = 0; p < (*state)->num_partitions(); ++p) {
      if ((*state)->part(p).built &&
          !service.storage().Exists(
              (*def)->PartitionPath(static_cast<int>(p)))) {
        r.consistent = false;
      }
    }
  }
  return r;
}

}  // namespace
}  // namespace dfim

int main(int argc, char** argv) {
  using namespace dfim;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  const bool fast = bench::FastMode();
  // Fast mode shrinks the horizon so the whole sweep runs in seconds.
  const Seconds horizon = (fast ? 120.0 : 720.0) * 60.0;
  const uint64_t seed = 7;

  std::vector<Arm> arms;
  for (double rate : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    Arm a;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "crash_%.3f", rate);
    a.name = buf;
    a.faults.crash_rate = rate;
    a.faults.seed = 17;
    arms.push_back(a);
  }
  {
    Arm a;
    a.name = "stragglers_0.3";
    a.faults.straggler_rate = 0.3;
    a.faults.seed = 17;
    arms.push_back(a);
    Arm b;
    b.name = "storage_0.1";
    b.faults.storage_fault_rate = 0.1;
    b.faults.seed = 17;
    arms.push_back(b);
  }

  bench::Header("Fault-injection sweep (Gain policy, Montage, " +
                std::to_string(static_cast<int>(horizon / 60.0)) + " quanta)");
  std::printf("%-16s %8s %8s %8s %8s %10s %10s %10s %9s %6s\n", "arm",
              "finished", "failed", "crashes", "reexec", "rec.quanta",
              "vm.quanta", "avg.tq/df", "slack", "ok?");

  std::string json = "{\n  \"bench\": \"faults\",\n";
  json += "  \"policy\": \"gain\",\n  \"workload\": \"montage\",\n";
  json += "  \"horizon_quanta\": " +
          std::to_string(static_cast<int>(horizon / 60.0)) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n  \"arms\": [\n";

  bool all_ok = true;
  for (size_t i = 0; i < arms.size(); ++i) {
    ArmResult r = RunArm(arms[i], horizon, seed);
    const ServiceMetrics& m = r.m;
    bool ok = r.consistent && r.accounting_slack >= 0 &&
              r.accounting_slack <= 1;
    all_ok = all_ok && ok;
    std::printf("%-16s %8d %8d %8d %8d %10lld %10lld %10.2f %9d %6s\n",
                arms[i].name.c_str(), m.dataflows_finished, m.dataflows_failed,
                m.containers_failed, m.ops_reexecuted,
                static_cast<long long>(m.recovery_quanta),
                static_cast<long long>(m.total_vm_quanta),
                m.AvgTimeQuantaPerDataflow(), r.accounting_slack,
                ok ? "yes" : "NO");

    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"arm\": \"%s\", \"crash_rate\": %.4f, "
        "\"straggler_rate\": %.4f, \"storage_fault_rate\": %.4f,\n"
        "     \"dataflows_arrived\": %d, \"dataflows_finished\": %d, "
        "\"dataflows_failed\": %d, \"dataflows_overran\": %d,\n"
        "     \"containers_failed\": %d, \"ops_reexecuted\": %d, "
        "\"recovery_quanta\": %lld, \"storage_retries\": %d, "
        "\"storage_faults\": %d, \"builds_discarded\": %d,\n"
        "     \"total_vm_quanta\": %lld, \"avg_time_quanta_per_dataflow\": "
        "%.4f, \"index_partitions_built\": %d,\n"
        "     \"accounting_slack\": %d, \"catalog_storage_consistent\": %s, "
        "\"wall_ms\": %.1f}",
        arms[i].name.c_str(), arms[i].faults.crash_rate,
        arms[i].faults.straggler_rate, arms[i].faults.storage_fault_rate,
        m.dataflows_arrived, m.dataflows_finished, m.dataflows_failed,
        m.dataflows_overran, m.containers_failed, m.ops_reexecuted,
        static_cast<long long>(m.recovery_quanta), m.storage_retries,
        m.storage_faults, m.builds_discarded,
        static_cast<long long>(m.total_vm_quanta),
        m.AvgTimeQuantaPerDataflow(), m.index_partitions_built,
        r.accounting_slack, r.consistent ? "true" : "false", r.wall_ms);
    json += buf;
    json += (i + 1 < arms.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return all_ok ? 0 : 1;
}
