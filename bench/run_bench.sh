#!/usr/bin/env bash
# Builds the benches in Release (-O2 -DNDEBUG) and emits BENCH_sched.json,
# BENCH_faults.json and BENCH_overload.json at the repo root.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "$BUILD" -j --target bench_sched_scale bench_faults bench_overload

"$BUILD/bench/bench_sched_scale" "$ROOT/BENCH_sched.json"
"$BUILD/bench/bench_faults" "$ROOT/BENCH_faults.json"
"$BUILD/bench/bench_overload" "$ROOT/BENCH_overload.json"
