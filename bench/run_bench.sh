#!/usr/bin/env bash
# Builds the benches in Release (-O2 -DNDEBUG) and emits BENCH_sched.json,
# BENCH_faults.json, BENCH_overload.json and BENCH_index.json at the repo
# root. Every emitted file gets a `meta` block (git sha, compiler, flags)
# stamped in so a committed result is traceable to the build that made it.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"
RELEASE_FLAGS="-O2 -DNDEBUG"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="$RELEASE_FLAGS"
cmake --build "$BUILD" -j --target bench_sched_scale bench_faults \
    bench_overload bench_index

# Injects a meta block right after the opening '{' of a bench JSON file.
# The values are one-line strings with no quotes, so plain sed is safe.
stamp_meta() {
  local file="$1"
  local sha dirty compiler
  sha="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
  dirty="false"
  if ! git -C "$ROOT" diff --quiet HEAD -- 2>/dev/null; then dirty="true"; fi
  compiler="$(c++ --version 2>/dev/null | head -n1 | tr -d '"' || echo unknown)"
  local tmp="$file.tmp.$$"
  {
    head -n1 "$file"
    printf '  "meta": {"git_sha": "%s", "dirty": %s, "compiler": "%s", "flags": "%s"},\n' \
        "$sha" "$dirty" "$compiler" "$RELEASE_FLAGS"
    tail -n +2 "$file"
  } > "$tmp"
  mv "$tmp" "$file"
}

"$BUILD/bench/bench_sched_scale" "$ROOT/BENCH_sched.json"
"$BUILD/bench/bench_faults" "$ROOT/BENCH_faults.json"
"$BUILD/bench/bench_overload" "$ROOT/BENCH_overload.json"
# Checksum-gated: batched probes must beat one-at-a-time scalar lookups by
# >= 1.5x on the LLC-exceeding trees, with bit-identical visit sequences.
DFIM_BENCH_CHECK=1 "$BUILD/bench/bench_index" "$ROOT/BENCH_index.json"

for f in BENCH_sched.json BENCH_faults.json BENCH_overload.json \
         BENCH_index.json; do
  stamp_meta "$ROOT/$f"
done
