#!/usr/bin/env bash
# Builds the benches in Release (-O2 -DNDEBUG) and emits BENCH_sched.json,
# BENCH_faults.json, BENCH_overload.json and BENCH_index.json at the repo
# root.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "$BUILD" -j --target bench_sched_scale bench_faults \
    bench_overload bench_index

"$BUILD/bench/bench_sched_scale" "$ROOT/BENCH_sched.json"
"$BUILD/bench/bench_faults" "$ROOT/BENCH_faults.json"
"$BUILD/bench/bench_overload" "$ROOT/BENCH_overload.json"
# Checksum-gated: batched probes must beat one-at-a-time scalar lookups by
# >= 1.5x on the LLC-exceeding trees, with bit-identical visit sequences.
DFIM_BENCH_CHECK=1 "$BUILD/bench/bench_index" "$ROOT/BENCH_index.json"
