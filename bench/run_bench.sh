#!/usr/bin/env bash
# Builds the scheduler scaling bench in Release (-O2 -DNDEBUG) and emits
# BENCH_sched.json at the repo root.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "$BUILD" -j --target bench_sched_scale

"$BUILD/bench/bench_sched_scale" "$ROOT/BENCH_sched.json"
