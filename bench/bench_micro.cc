// Google-benchmark microbenchmarks for the core components: B+Tree
// operations, the knapsack solvers, the gain model and the schedulers.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/gain.h"
#include "core/knapsack.h"
#include "core/tuner.h"
#include "index/bplus_tree.h"
#include "sched/load_balance_scheduler.h"
#include "sched/skyline_scheduler.h"

namespace dfim {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  auto n = static_cast<int64_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    BPlusTree<int64_t> tree;
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(static_cast<int64_t>(rng.Next() % 1000000),
                  static_cast<RowId>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeBulkLoad(benchmark::State& state) {
  auto n = static_cast<int64_t>(state.range(0));
  std::vector<BPlusTree<int64_t>::Entry> entries;
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({i, static_cast<RowId>(i)});
  }
  for (auto _ : state) {
    BPlusTree<int64_t> tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeBulkLoad)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  BPlusTree<int64_t> tree;
  Rng rng(2);
  for (int64_t i = 0; i < 100000; ++i) {
    tree.Insert(static_cast<int64_t>(rng.Next() % 1000000),
                static_cast<RowId>(i));
  }
  int64_t k = 0;
  for (auto _ : state) {
    auto rows = tree.Lookup(k % 1000000);
    benchmark::DoNotOptimize(rows.size());
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_BPlusTreeLookupBatch(benchmark::State& state) {
  // Pipelined group probes (forced past the adaptive threshold) vs the
  // one-at-a-time BM_BPlusTreeLookup above; arg = group size.
  const size_t group = static_cast<size_t>(state.range(0));
  BPlusTree<int64_t>::Options opts;
  opts.batch_pipeline_min_bytes = 0;
  BPlusTree<int64_t> tree(opts);
  Rng rng(2);
  for (int64_t i = 0; i < 100000; ++i) {
    tree.Insert(static_cast<int64_t>(rng.Next() % 1000000),
                static_cast<RowId>(i));
  }
  std::vector<int64_t> keys;
  int64_t k = 0;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(k % 1000000);
    k += 7919;
  }
  for (auto _ : state) {
    int64_t visits = 0;
    tree.LookupBatch(
        std::span<const int64_t>(keys),
        [&visits](size_t, const int64_t&, RowId) { ++visits; }, group);
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_BPlusTreeLookupBatch)->Arg(1)->Arg(8)->Arg(16);

void BM_BPlusTreeRangeScan(benchmark::State& state) {
  BPlusTree<int64_t> tree;
  std::vector<BPlusTree<int64_t>::Entry> entries;
  for (int64_t i = 0; i < 1000000; ++i) {
    entries.push_back({i, static_cast<RowId>(i)});
  }
  tree.BulkLoad(entries);
  for (auto _ : state) {
    int64_t sum = 0;
    tree.ScanRange(250000, 260000,
                   [&sum](const int64_t& key, RowId) { sum += key; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BPlusTreeRangeScan);

void BM_KnapsackBranchAndBound(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({i, rng.Uniform(0.02, 0.2), rng.Uniform(0.1, 1.0)});
  }
  for (auto _ : state) {
    auto r = SolveKnapsackBranchAndBound(items, 0.6);
    benchmark::DoNotOptimize(r.total_gain);
  }
}
BENCHMARK(BM_KnapsackBranchAndBound)->Arg(10)->Arg(50)->Arg(200);

void BM_GainEvaluation(benchmark::State& state) {
  GainModel model(GainOptions{}, PricingModel{});
  std::vector<GainContribution> uses;
  for (int i = 0; i < 64; ++i) {
    uses.push_back({1.0 + i * 0.1, 1.0, static_cast<double>(i)});
  }
  for (auto _ : state) {
    auto g = model.Evaluate(uses, 1.0, 1.0, 500.0);
    benchmark::DoNotOptimize(g.g);
  }
}
BENCHMARK(BM_GainEvaluation);

void BM_SkylineScheduler(benchmark::State& state) {
  bench::PaperSetup setup(7);
  Dataflow df = setup.generator->Generate(AppType::kMontage, 0, 0);
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  SchedulerOptions so = bench::PaperSchedulerOptions();
  so.skyline_cap = static_cast<int>(state.range(0));
  BuildDataflowCosts(df.dag, df, setup.catalog, so.net_mb_per_sec, &durations,
                     &costs);
  SkylineScheduler sched(so);
  for (auto _ : state) {
    auto skyline = sched.ScheduleDag(df.dag, durations, false);
    benchmark::DoNotOptimize(skyline.ok());
  }
}
BENCHMARK(BM_SkylineScheduler)->Arg(2)->Arg(4)->Arg(8);

/// Serial naive vs incremental vs parallel skyline engines on the same
/// generated dataflow (arg = engine: 0 naive, 1 incremental, 2 parallel x2),
/// optional build ops included so the keep-base path is exercised.
void BM_SkylineSchedule(benchmark::State& state) {
  bench::PaperSetup setup(7);
  Dataflow df = setup.generator->Generate(AppType::kMontage, 0, 0);
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  SchedulerOptions so = bench::PaperSchedulerOptions();
  so.skyline_cap = 8;
  so.max_containers = 16;
  switch (state.range(0)) {
    case 0:
      so.use_naive_expansion = true;
      break;
    case 1:
      break;
    case 2:
      so.num_threads = 2;
      break;
  }
  BuildDataflowCosts(df.dag, df, setup.catalog, so.net_mb_per_sec, &durations,
                     &costs);
  SkylineScheduler sched(so);
  for (auto _ : state) {
    auto skyline = sched.ScheduleDag(df.dag, durations, true);
    benchmark::DoNotOptimize(skyline.ok());
  }
}
BENCHMARK(BM_SkylineSchedule)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"engine"});

void BM_LoadBalanceScheduler(benchmark::State& state) {
  bench::PaperSetup setup(7);
  Dataflow df = setup.generator->Generate(AppType::kMontage, 0, 0);
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  SchedulerOptions so = bench::PaperSchedulerOptions();
  BuildDataflowCosts(df.dag, df, setup.catalog, so.net_mb_per_sec, &durations,
                     &costs);
  LoadBalanceScheduler sched(so);
  for (auto _ : state) {
    auto s = sched.ScheduleDag(df.dag, durations, 10);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_LoadBalanceScheduler);

}  // namespace
}  // namespace dfim

BENCHMARK_MAIN();
