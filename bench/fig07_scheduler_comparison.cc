// Reproduces Figure 7: the offline skyline scheduler vs the online
// load-balance baseline on Cybershake, scaling (a) operator runtimes up to
// 10x with small data (0.01x) and (b) data sizes up to 100x. The y-axis is
// the % difference of the online baseline relative to offline (positive =
// online worse).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/tuner.h"
#include "sched/load_balance_scheduler.h"
#include "sched/skyline_scheduler.h"

namespace dfim {
namespace {

struct Point {
  double time_diff_pct;
  double money_diff_pct;
};

Point Compare(bench::PaperSetup* setup, double cpu_scale, double data_scale,
              int reps, const SchedulerOptions& so) {
  GeneratorOptions go;
  go.cpu_scale = cpu_scale;
  go.data_scale = data_scale;
  DataflowGenerator gen(setup->db.get(), 11, go);
  SkylineScheduler offline(so);
  LoadBalanceScheduler online(so);
  RunningStats dt, dm;
  for (int i = 0; i < reps; ++i) {
    Dataflow df = gen.Generate(AppType::kCybershake, i, 0);
    std::vector<Seconds> durations;
    std::vector<SimOpCost> costs;
    BuildDataflowCosts(df.dag, df, setup->catalog, so.net_mb_per_sec,
                       &durations, &costs);
    auto skyline = offline.ScheduleDag(df.dag, durations, false);
    if (!skyline.ok() || skyline->empty()) continue;
    const Schedule& best = skyline->front();  // fastest, as in §6.3
    // The elastic baseline picks its own scale-out (DAG width), as an
    // online load balancer deployed on a cloud would.
    auto lb = online.ScheduleDag(df.dag, durations,
                                 LoadBalanceScheduler::kAutoContainers);
    if (!lb.ok()) continue;
    double t_off = best.makespan();
    double m_off = static_cast<double>(best.LeasedQuanta(so.quantum));
    double t_on = lb->makespan();
    double m_on = static_cast<double>(lb->LeasedQuanta(so.quantum));
    dt.Add(100.0 * (t_on - t_off) / t_off);
    dm.Add(100.0 * (m_on - m_off) / m_off);
  }
  return {dt.mean(), dm.mean()};
}

}  // namespace
}  // namespace dfim

int main() {
  using namespace dfim;
  bench::Header("Figure 7 -- offline (skyline) vs online (load-balance) scheduler");
  auto setup = std::make_unique<bench::PaperSetup>(7);
  SchedulerOptions so = bench::PaperSchedulerOptions();
  int reps = bench::FastMode() ? 2 : 6;

  std::printf("\n(a) CPU-intensive: runtimes x{1..10}, data x0.01 "
              "(online - offline, %% of offline)\n");
  std::printf("%10s %12s %12s\n", "CPU scale", "dTime (%)", "dMoney (%)");
  for (double s : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    Point p = Compare(setup.get(), s, 0.01, reps, so);
    std::printf("%10.0fx %12.2f %12.2f\n", s, p.time_diff_pct,
                p.money_diff_pct);
  }
  bench::Note("Paper shape: online is competitive (sometimes faster, slightly"
              " more expensive) on CPU-intensive dataflows.");

  std::printf("\n(b) Data-intensive: data x{1..100}\n");
  std::printf("%10s %12s %12s\n", "Data scale", "dTime (%)", "dMoney (%)");
  for (double s : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    Point p = Compare(setup.get(), 1.0, s, reps, so);
    std::printf("%10.0fx %12.2f %12.2f\n", s, p.time_diff_pct,
                p.money_diff_pct);
  }
  bench::Note("Paper shape: online up to ~2x slower (+100%) and up to ~4x "
              "more expensive (+300%) as data grows.");
  return 0;
}
