// Reproduces Table 5: sizes of indexes on four lineitem columns as a
// percentage of the table size, from (a) the analytic B+Tree cost model at
// the paper's scale 2, and (b) a real B+Tree built over generated rows at a
// smaller scale (page-count footprint), to validate the model.

#include <cstdio>

#include "bench_util.h"
#include "data/index_model.h"
#include "index/bplus_tree_ref.h"
#include "tpch/lineitem.h"
#include "tpch/queries.h"

int main() {
  using namespace dfim;
  bench::Header("Table 5 -- indexes on table lineitem (TPC-H)");

  // (a) Analytic model at the paper's scale (12M rows, ~1.4 GB).
  BTreeCostModel model;
  Schema schema = tpch::LineitemSchema();
  Table table("lineitem", schema);
  table.AddPartition(12000000);
  const Partition& part = table.partitions()[0];
  MegaBytes table_mb = table.TotalSize();
  std::printf("\nModelled at scale 2: %lld rows, %.2f GB table\n",
              static_cast<long long>(table.TotalRecords()), table_mb / 1024.0);

  struct Row {
    const char* column;
    const char* type;
    double paper_mb;
    double paper_pct;
  };
  const Row kPaper[] = {
      {"comment", "text", 422.30, 30.16},
      {"shipinstruct", "20 chars", 248.95, 17.78},
      {"commitdate", "date", 225.91, 16.13},
      {"orderkey", "integer", 146.99, 10.49},
  };
  std::printf("\n%-14s %-10s %12s %10s   %s\n", "Column", "Type", "Size (MB)",
              "% Table", "(paper: MB / %)");
  for (const auto& r : kPaper) {
    MegaBytes size = model.PartitionIndexSize(table, {r.column}, part);
    std::printf("%-14s %-10s %12.2f %9.2f%%   (%.2f MB / %.2f%%)\n", r.column,
                r.type, size, 100.0 * size / table_mb, r.paper_mb,
                r.paper_pct);
  }

  // (b) Real B+Tree footprint at a reduced scale.
  double scale = bench::FastMode() ? 0.002 : 0.02;
  tpch::LineitemGenerator gen(scale, 42);
  TableHeap<tpch::LineitemRow> heap;
  int64_t rows = gen.Generate(&heap);
  auto tree = tpch::BuildOrderkeyIndex(heap);
  double heap_mb =
      static_cast<double>(rows) * schema.AvgRecordBytes() / (1024.0 * 1024.0);
  double tree_mb = static_cast<double>(tree.SizeBytes()) / (1024.0 * 1024.0);
  std::printf(
      "\nMeasured B+Tree over generated rows (scale %.3f): %lld rows, "
      "height %d, %zu nodes\n",
      scale, static_cast<long long>(rows), tree.height(), tree.node_count());
  std::printf(
      "  orderkey index: %.2f MB = %.2f%% of the %.2f MB table "
      "(model predicts %.2f%%)\n",
      tree_mb, 100.0 * tree_mb / heap_mb, heap_mb,
      100.0 * model.PartitionIndexSize(table, {"orderkey"}, part) / table_mb);

  // Both layouts bulk load identical shapes: the arena/SoA tree and the
  // retained pointer-chasing reference must agree on height, node count, and
  // page footprint — the paper's size model is layout-independent, and any
  // divergence here would mean the rewrite changed the tree, not just the
  // memory layout.
  BPlusTreeRef<int32_t>::Options ref_opts;
  ref_opts.key_bytes = 4;
  BPlusTreeRef<int32_t> ref(ref_opts);
  std::vector<BPlusTreeRef<int32_t>::Entry> ref_entries;
  ref_entries.reserve(heap.size());
  heap.Scan([&ref_entries](RowId id, const tpch::LineitemRow& row) {
    ref_entries.push_back({row.orderkey, id});
  });
  std::sort(ref_entries.begin(), ref_entries.end());
  ref.BulkLoad(ref_entries);
  bool same = ref.height() == tree.height() &&
              ref.node_count() == tree.node_count() &&
              ref.SizeBytes() == tree.SizeBytes();
  std::printf(
      "  layouts: arena/SoA height %d / %zu nodes, pointer-ref height %d / "
      "%zu nodes -> %s\n",
      tree.height(), tree.node_count(), ref.height(), ref.node_count(),
      same ? "identical" : "MISMATCH");
  if (!same) return 1;
  return 0;
}
