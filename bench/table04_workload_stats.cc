// Reproduces Table 4: basic statistics of the scientific dataflows
// (operator runtimes and input-file sizes for Montage, Ligo, Cybershake).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

int main() {
  using namespace dfim;
  bench::Header("Table 4 -- basic statistics of the scientific dataflows");
  auto setup = std::make_unique<bench::PaperSetup>(7);

  int reps = bench::FastMode() ? 5 : 50;

  std::printf("\nOperator runtimes (seconds), %d dataflows per family:\n",
              reps);
  std::printf("%-12s %6s %8s %8s %8s %8s   (paper: min max mean stdev)\n",
              "Dataflow", "#ops", "Min", "Max", "Mean", "Stdev");
  const char* paper_time[] = {"3.82 49.32 11.32 2.95", "4.03 689.39 222.33 241.42",
                              "0.55 199.43 22.97 25.08"};
  int row = 0;
  for (AppType app :
       {AppType::kMontage, AppType::kLigo, AppType::kCybershake}) {
    RunningStats st;
    size_t ops = 0;
    for (int i = 0; i < reps; ++i) {
      Dataflow df = setup->generator->Generate(app, i, 0);
      ops = df.dag.num_ops();
      for (const auto& op : df.dag.ops()) st.Add(op.time);
    }
    std::printf("%-12s %6zu %8.2f %8.2f %8.2f %8.2f   (%s)\n",
                std::string(AppTypeToString(app)).c_str(), ops, st.min(),
                st.max(), st.mean(), st.stdev(), paper_time[row++]);
  }

  std::printf("\nInput files (MB):\n");
  std::printf("%-12s %6s %10s %10s %10s %10s   (paper: # min max mean stdev)\n",
              "Dataflow", "#", "Min", "Max", "Mean", "Stdev");
  const char* paper_input[] = {"20 0.01 4.02 3.22 1.65",
                               "53 0.86 14.91 14.24 2.70",
                               "52 1.81 19169.75 1459.08 5091.69"};
  row = 0;
  for (AppType app :
       {AppType::kMontage, AppType::kLigo, AppType::kCybershake}) {
    RunningStats st;
    const auto& files = setup->db->FilesOf(app);
    for (const auto& name : files) {
      auto t = setup->catalog.GetTable(name);
      if (t.ok()) st.Add((*t)->TotalSize());
    }
    std::printf("%-12s %6zu %10.2f %10.2f %10.2f %10.2f   (%s)\n",
                std::string(AppTypeToString(app)).c_str(), files.size(),
                st.min(), st.max(), st.mean(), st.stdev(), paper_input[row++]);
  }

  std::printf(
      "\nDatabase: %d files, %.2f GB total, %d partitions (max 128 MB)  "
      "(paper: 125 files, 76.69 GB, 713 partitions)\n",
      setup->db->TotalFiles(), setup->db->TotalSize() / 1024.0,
      setup->db->TotalPartitions());
  return 0;
}
