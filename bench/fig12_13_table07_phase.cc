// Reproduces Figure 12, Table 7 and Figure 13: the dynamic workload
// experiment with the phase dataflow generator (Cybershake -> Ligo ->
// Montage -> Cybershake over 720 quanta), comparing No-Index, Random,
// Gain (no delete) and Gain.

#include <cstdio>

#include "service_experiment.h"

int main() {
  using namespace dfim;
  bench::Header("Figure 12 / Table 7 / Figure 13 -- phase dataflow workload");

  Seconds horizon = (bench::FastMode() ? 180.0 : 720.0) * 60.0;
  std::printf("\nHorizon: %.0f quanta; phases Cybershake/Ligo/Montage/"
              "Cybershake; Poisson arrivals (lambda = 1 quantum).\n",
              horizon / 60.0);

  auto make_client = [horizon](DataflowGenerator* gen) {
    // Phase durations scale with the horizon so the fast mode still crosses
    // all four phases.
    double f = horizon / (720.0 * 60.0);
    std::vector<WorkloadPhase> phases;
    for (auto& ph : PhaseWorkloadClient::PaperPhases(60.0)) {
      phases.push_back({ph.app, ph.duration * f});
    }
    return std::make_unique<PhaseWorkloadClient>(gen, 60.0, phases, 23);
  };

  auto results = bench::RunAllPolicies(horizon, 23, make_client);

  std::printf("\nFig. 12 -- dataflows finished & cost per dataflow (phase):");
  bench::PrintFinishedAndCost(results);
  bench::Note("Paper shape: Gain finishes ~2x the dataflows of No-Index; "
              "Random matches No-Index throughput at much higher cost; "
              "no-delete costs more than Gain.");

  bench::PrintOperatorCounts(results);

  bench::PrintAdaptationTimeline(results.back(), 60.0);
  bench::Note("Paper shape: indexes built per phase, deleted when the phase "
              "moves on, and re-created when Cybershake returns.");
  return 0;
}
