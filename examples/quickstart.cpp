// Quickstart: build a small dataflow, register a table with a candidate
// index, schedule the dataflow with the skyline scheduler, interleave the
// index build into idle slots, and execute it on the simulated cloud.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/interleave.h"
#include "core/tuner.h"
#include "data/catalog.h"
#include "dataflow/build_index_ops.h"
#include "dataflow/dataflow.h"
#include "sched/exec_simulator.h"

using namespace dfim;

int main() {
  // 1. A table "events" of ~480 MB in 128 MB partitions, with a candidate
  //    index on its key column.
  Catalog catalog;
  Schema schema({Column::Int64("key"), Column::Text("payload", 117.0)});
  Table events("events", schema);
  events.PartitionBySize(4000000, 128.0);
  if (!catalog.AddTable(std::move(events)).ok()) return 1;
  if (!catalog.DefineIndex(IndexDef{"idx:events:key", "events", {"key"}}).ok()) {
    return 1;
  }

  // 2. A four-operator dataflow: two parallel scans of "events" feeding an
  //    aggregation, then a report. The scans can use the index (speedup 94x,
  //    one of the paper's Table 6 calibration values).
  Dataflow df;
  df.expr = "SELECT ... FROM events WHERE key BETWEEN ...";
  df.candidate_indexes = {"idx:events:key"};
  df.index_speedup["idx:events:key"] = 94.44;
  Dag& g = df.dag;
  Operator scan;
  scan.name = "scan";
  scan.time = 45.0;
  scan.input_table = "events";
  scan.output_mb = 64.0;
  int s1 = g.AddOperator(scan);
  int s2 = g.AddOperator(scan);
  Operator agg;
  agg.name = "aggregate";
  agg.time = 30.0;
  agg.output_mb = 1.0;
  int a = g.AddOperator(agg);
  Operator report;
  report.name = "report";
  report.time = 5.0;
  int r = g.AddOperator(report);
  (void)g.AddFlow(s1, a, 64.0);
  (void)g.AddFlow(s2, a, 64.0);
  (void)g.AddFlow(a, r, 1.0);

  // 3. Append the index's build operators (one per partition) as optional
  //    ops, with a uniform ranking gain.
  int next_id = static_cast<int>(g.num_ops());
  auto build_ops = MakeBuildIndexOps(catalog, "idx:events:key", 125.0, &next_id);
  if (!build_ops.ok()) return 1;
  for (auto& op : *build_ops) {
    op.gain = 1.0;
    g.AddOperator(std::move(op));
  }
  std::printf("Dataflow: %zu ops (+%zu candidate index-build ops)\n",
              g.num_ops() - build_ops->size(), build_ops->size());

  // 4. Schedule with LP interleaving: dataflow first, then pack idle slots.
  SchedulerOptions so;  // 60 s quanta, $0.1/quantum, 1 Gbps
  std::vector<Seconds> durations;
  std::vector<SimOpCost> costs;
  BuildDataflowCosts(g, df, catalog, so.net_mb_per_sec, &durations, &costs);
  Interleaver interleaver(so, InterleaveMode::kLp);
  auto skyline = interleaver.Interleave(g, durations);
  if (!skyline.ok()) {
    std::printf("scheduling failed: %s\n", skyline.status().ToString().c_str());
    return 1;
  }
  const Schedule& plan = skyline->front();
  std::printf("\nSkyline has %zu schedules; fastest: %.1f s on %d containers, "
              "%lld leased quanta\n",
              skyline->size(), plan.makespan(), plan.num_containers(),
              static_cast<long long>(plan.LeasedQuanta(so.quantum)));
  std::printf("\nTimeline ('#' dataflow, '+' index build, '.' idle):\n%s",
              plan.ToAscii(so.quantum, 80).c_str());

  // 5. Execute on the simulated cloud and register completed partitions.
  ExecSimulator sim(SimOptions{});
  auto exec = sim.Run(g, plan, costs);
  if (!exec.ok()) return 1;
  for (const auto& b : exec->builds) {
    (void)catalog.MarkIndexPartitionBuilt(b.index_id, b.partition, b.finish);
  }
  auto frac = catalog.BuiltFraction("idx:events:key");
  std::printf("\nExecuted: makespan %.1f s, %lld quanta charged, %zu index "
              "partitions built (%.0f%% of the index), %d build ops killed\n",
              exec->makespan, static_cast<long long>(exec->leased_quanta),
              exec->builds.size(), frac.ok() ? *frac * 100 : 0.0,
              exec->killed_builds);

  // 6. The next identical dataflow now runs faster thanks to the index.
  BuildDataflowCosts(g, df, catalog, so.net_mb_per_sec, &durations, &costs);
  auto faster = interleaver.Interleave(g, durations);
  if (faster.ok()) {
    std::printf("\nRe-issued dataflow with the index available: %.1f s "
                "(was %.1f s)\n",
                faster->front().makespan(), plan.makespan());
  }
  return 0;
}
