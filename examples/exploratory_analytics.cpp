// Exploratory analytics session: a data scientist issues a stream of
// scientific dataflows to the QaaS service (the paper's Fig. 1 setting).
// The service auto-tunes indexes with the Gain policy: watch it build
// indexes during the Cybershake phase, drop them when the workload moves to
// Montage, and rebuild when Cybershake returns.
//
// Build & run:  cmake --build build && ./build/examples/exploratory_analytics

#include <cstdio>

#include "core/service.h"

using namespace dfim;

int main() {
  Catalog catalog;
  FileDatabaseOptions fdo;  // a small corpus keeps the demo fast
  fdo.montage_files = 6;
  fdo.ligo_files = 6;
  fdo.cybershake_files = 6;
  FileDatabase db(&catalog, fdo);
  if (!db.Populate().ok()) return 1;
  std::printf("File database: %d files, %.1f GB, %d partitions, %zu candidate "
              "indexes\n",
              db.TotalFiles(), db.TotalSize() / 1024.0, db.TotalPartitions(),
              db.AllIndexIds().size());

  DataflowGenerator generator(&db, 2024);
  Seconds horizon = 150.0 * 60.0;
  std::vector<WorkloadPhase> phases{
      {AppType::kCybershake, horizon * 0.4},
      {AppType::kMontage, horizon * 0.35},
      {AppType::kCybershake, horizon * 0.25},
  };
  PhaseWorkloadClient client(&generator, /*mean_interarrival=*/300.0, phases,
                             2024);

  ServiceOptions so;
  so.policy = IndexPolicy::kGain;
  so.total_time = horizon;
  so.tuner.sched.max_containers = 16;
  so.tuner.sched.skyline_cap = 3;
  so.sim.time_error = 0.1;
  so.sim.data_error = 0.1;
  QaasService service(&catalog, so);

  auto metrics = service.Run(&client);
  if (!metrics.ok()) {
    std::printf("service failed: %s\n", metrics.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSession over %.0f quanta:\n", horizon / 60.0);
  std::printf("  dataflows executed : %d\n", metrics->dataflows_finished);
  std::printf("  avg time/dataflow  : %.2f quanta\n",
              metrics->AvgTimeQuantaPerDataflow());
  std::printf("  VM quanta charged  : %lld\n",
              static_cast<long long>(metrics->total_vm_quanta));
  std::printf("  index storage bill : $%.4f\n", metrics->storage_cost);
  std::printf("  index partitions built: %d, index deletions: %d\n",
              metrics->index_partitions_built, metrics->indexes_deleted);

  std::printf("\nIndex footprint over the session (one row per dataflow):\n");
  std::printf("%10s %10s %12s\n", "t (q)", "#indexes", "index MB");
  size_t step = metrics->timeline.size() / 20 + 1;
  for (size_t i = 0; i < metrics->timeline.size(); i += step) {
    const auto& pt = metrics->timeline[i];
    std::printf("%10.1f %10d %12.1f\n", pt.t / 60.0, pt.indexes_built,
                pt.index_mb);
  }
  std::printf("\nThe dips are deletions after the workload phase moved on — "
              "the tuner's Eq. 3-5 gains went non-positive.\n");
  return 0;
}
