// Pluggable pricing demo: the paper notes "our approach can work with
// different pricing models. A pricing model is plugged to the scheduler by
// using the appropriate pricing formulas" (§3). This example runs the same
// workload under three providers — the paper's default, a coarse-quantum
// provider (5-minute quanta, like first-generation EC2's hourly billing
// scaled down), and an expensive-storage provider — and shows how the
// tuner's build/keep/delete decisions shift.
//
// Build & run:  cmake --build build && ./build/examples/custom_pricing

#include <cstdio>

#include "core/service.h"

using namespace dfim;

namespace {

ServiceMetrics RunWith(const PricingModel& pricing, const char* label) {
  Catalog catalog;
  FileDatabaseOptions fdo;
  fdo.montage_files = 5;
  fdo.ligo_files = 5;
  fdo.cybershake_files = 5;
  FileDatabase db(&catalog, fdo);
  if (!db.Populate().ok()) return {};
  DataflowGenerator generator(&db, 7);
  PhaseWorkloadClient client(&generator, 300.0,
                             {{AppType::kCybershake, 1e9}}, 7);

  ServiceOptions so;
  so.policy = IndexPolicy::kGain;
  so.total_time = 100.0 * pricing.quantum;
  so.tuner.pricing = pricing;
  so.tuner.sched.quantum = pricing.quantum;
  so.tuner.sched.max_containers = 16;
  so.tuner.sched.skyline_cap = 3;
  so.sim.time_error = 0.1;
  so.sim.data_error = 0.1;
  QaasService service(&catalog, so);
  auto m = service.Run(&client);
  if (!m.ok()) {
    std::printf("%s failed: %s\n", label, m.status().ToString().c_str());
    return {};
  }
  std::printf(
      "%-24s quantum=%4.0fs  Mst=%.0e  -> %3d dataflows, %4d index parts "
      "built, %3d deletions, storage bill $%.4f\n",
      label, pricing.quantum, pricing.storage_price_per_mb_per_quantum,
      m->dataflows_finished, m->index_partitions_built, m->indexes_deleted,
      m->storage_cost);
  return *m;
}

}  // namespace

int main() {
  std::printf("Same Cybershake stream under three pricing models:\n\n");

  // The paper's Table 3 pricing.
  PricingModel paper;
  RunWith(paper, "paper (EC2-like)");

  // Coarser quanta: more paid tail per container, so more room for builds.
  PricingModel coarse;
  coarse.quantum = 300.0;
  coarse.vm_price_per_quantum = 0.5;  // same $/hour
  RunWith(coarse, "coarse quanta (5 min)");

  // Storage 50x more expensive: indexes must earn their keep; the tuner
  // builds fewer and deletes sooner.
  PricingModel pricey_storage;
  pricey_storage.storage_price_per_mb_per_quantum = 5e-3;
  RunWith(pricey_storage, "expensive storage");

  std::printf(
      "\nExpected: coarser quanta -> more idle-slot room (more builds); "
      "expensive storage -> fewer indexes kept.\n");
  return 0;
}
