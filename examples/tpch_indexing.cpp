// TPC-H indexing demo: generate the lineitem table, build a real B+Tree on
// orderkey, and run the paper's four calibration queries (Table 6) with and
// without the index. Also sizes the four Table 5 candidate indexes with the
// analytic cost model.
//
// Build & run:  cmake --build build && ./build/examples/tpch_indexing [scale]

#include <cstdio>
#include <cstdlib>

#include "data/index_model.h"
#include "tpch/extended_queries.h"
#include "tpch/lineitem.h"
#include "tpch/queries.h"

using namespace dfim;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  if (scale <= 0) scale = 0.05;

  tpch::LineitemGenerator gen(scale, 42);
  TableHeap<tpch::LineitemRow> heap;
  int64_t rows = gen.Generate(&heap);
  std::printf("Generated lineitem at scale %.3f: %lld rows (~%.1f MB)\n",
              scale, static_cast<long long>(rows),
              rows * tpch::LineitemSchema().AvgRecordBytes() / 1048576.0);

  std::printf("\nBuilding B+Tree on orderkey...\n");
  auto tree = tpch::BuildOrderkeyIndex(heap);
  std::printf("  %zu entries, height %d, %zu pages, %.1f MB on disk\n",
              tree.size(), tree.height(), tree.node_count(),
              tree.SizeBytes() / 1048576.0);

  auto qc = tpch::QueryConstants::ForMaxKey(gen.MaxOrderKey());
  tpch::CalibrationQueries queries(&heap, &tree, qc);
  std::printf("\n%-22s %12s %12s %10s %10s\n", "Query", "No-Index(s)",
              "Index(s)", "Speedup", "Rows");
  for (const auto& t : queries.RunAll()) {
    std::printf("%-22s %12.4f %12.6f %9.1fx %10lld\n", t.name.c_str(),
                t.no_index_sec, t.index_sec, t.Speedup(),
                static_cast<long long>(t.result_rows));
  }

  // The remaining §1 operator categories: grouping and join.
  auto orders = tpch::GenerateOrders(gen.MaxOrderKey());
  tpch::ExtendedQueries ext(&heap, &orders, &tree);
  for (const auto& t : {ext.GroupBy(), ext.Join(gen.MaxOrderKey() / 100)}) {
    std::printf("%-22s %12.4f %12.6f %9.1fx %10lld\n", t.name.c_str(),
                t.no_index_sec, t.index_sec, t.Speedup(),
                static_cast<long long>(t.result_rows));
  }

  std::printf("\nModelled index sizes at this scale (Table 5 columns):\n");
  BTreeCostModel model;
  Table table("lineitem", tpch::LineitemSchema());
  table.AddPartition(rows);
  MegaBytes table_mb = table.TotalSize();
  for (const char* col : {"comment", "shipinstruct", "commitdate", "orderkey"}) {
    MegaBytes size =
        model.PartitionIndexSize(table, {col}, table.partitions()[0]);
    std::printf("  %-14s %10.2f MB  (%.2f%% of table)\n", col, size,
                100.0 * size / table_mb);
  }
  return 0;
}
