// dfim_sim: command-line driver for the QaaS simulation. Runs any policy on
// any workload with the main knobs exposed as flags, printing the Fig. 12
// style summary — the entry point for exploring the system without writing
// code.
//
// Usage:
//   dfim_sim [--policy=gain|gain-nodelete|random|noindex]
//            [--workload=phase|random] [--quanta=N] [--lambda=SECONDS]
//            [--alpha=A] [--fade-d=D] [--grace=G] [--mode=lp|online]
//            [--resumable] [--adaptive-fading] [--update-interval=Q]
//            [--seed=S]
//
// Example:
//   ./build/examples/dfim_sim --policy=gain --workload=phase --quanta=360

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/service.h"

using namespace dfim;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *out = "";
    return true;
  }
  if (arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dfim_sim [--policy=gain|gain-nodelete|random|noindex]\n"
               "                [--workload=phase|random] [--quanta=N]\n"
               "                [--lambda=SECONDS] [--alpha=A] [--fade-d=D]\n"
               "                [--grace=G] [--mode=lp|online] [--resumable]\n"
               "                [--adaptive-fading] [--update-interval=Q]\n"
               "                [--seed=S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy = "gain";
  std::string workload = "phase";
  std::string mode = "lp";
  double quanta = 360;
  double lambda = 60;
  uint64_t seed = 23;
  ServiceOptions so;
  so.tuner.sched.max_containers = 100;
  so.tuner.sched.skyline_cap = 4;
  so.sim.time_error = 0.1;
  so.sim.data_error = 0.1;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--policy", &v)) {
      policy = v;
    } else if (FlagValue(argv[i], "--workload", &v)) {
      workload = v;
    } else if (FlagValue(argv[i], "--mode", &v)) {
      mode = v;
    } else if (FlagValue(argv[i], "--quanta", &v)) {
      quanta = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--lambda", &v)) {
      lambda = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--alpha", &v)) {
      so.tuner.gain.alpha = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--fade-d", &v)) {
      so.tuner.gain.fade_d_quanta = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--grace", &v)) {
      so.deletion_grace_quanta = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--update-interval", &v)) {
      so.update_interval_quanta = std::atof(v.c_str());
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--resumable", &v)) {
      so.resumable_builds = true;
    } else if (FlagValue(argv[i], "--adaptive-fading", &v)) {
      so.tuner.gain.adaptive_fading = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    }
  }

  if (policy == "gain") {
    so.policy = IndexPolicy::kGain;
  } else if (policy == "gain-nodelete") {
    so.policy = IndexPolicy::kGainNoDelete;
  } else if (policy == "random") {
    so.policy = IndexPolicy::kRandom;
  } else if (policy == "noindex") {
    so.policy = IndexPolicy::kNoIndex;
  } else {
    return Usage();
  }
  if (mode == "lp") {
    so.tuner.mode = InterleaveMode::kLp;
  } else if (mode == "online") {
    so.tuner.mode = InterleaveMode::kOnline;
  } else {
    return Usage();
  }
  so.total_time = quanta * so.tuner.sched.quantum;
  so.seed = seed;

  Catalog catalog;
  FileDatabase db(&catalog, FileDatabaseOptions{});
  if (!db.Populate().ok()) {
    std::fprintf(stderr, "failed to populate the file database\n");
    return 1;
  }
  DataflowGenerator generator(&db, seed);

  std::unique_ptr<WorkloadClient> client;
  if (workload == "phase") {
    double f = quanta / 720.0;
    std::vector<WorkloadPhase> phases;
    for (auto& ph : PhaseWorkloadClient::PaperPhases(so.tuner.sched.quantum)) {
      phases.push_back({ph.app, ph.duration * f});
    }
    client = std::make_unique<PhaseWorkloadClient>(&generator, lambda, phases,
                                                   seed);
  } else if (workload == "random") {
    client = std::make_unique<RandomWorkloadClient>(&generator, lambda, seed);
  } else {
    return Usage();
  }

  std::printf("dfim_sim: policy=%s workload=%s quanta=%.0f lambda=%.0fs "
              "mode=%s seed=%llu\n",
              policy.c_str(), workload.c_str(), quanta, lambda, mode.c_str(),
              static_cast<unsigned long long>(seed));
  QaasService service(&catalog, so);
  auto m = service.Run(client.get());
  if (!m.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 m.status().ToString().c_str());
    return 1;
  }
  PricingModel pricing = so.tuner.pricing;
  std::printf("\ndataflows finished     : %d (of %d issued)\n",
              m->dataflows_finished, m->dataflows_arrived);
  std::printf("avg time / dataflow    : %.2f quanta\n",
              m->AvgTimeQuantaPerDataflow());
  std::printf("avg cost / dataflow    : %.2f quanta-equivalents\n",
              m->AvgCostQuantaPerDataflow(pricing));
  std::printf("VM quanta charged      : %lld\n",
              static_cast<long long>(m->total_vm_quanta));
  std::printf("storage bill           : $%.4f\n", m->storage_cost);
  std::printf("ops executed / killed  : %d / %d\n", m->total_ops,
              m->killed_ops);
  std::printf("index partitions built : %d\n", m->index_partitions_built);
  std::printf("indexes deleted        : %d\n", m->indexes_deleted);
  if (m->update_batches > 0) {
    std::printf("update batches         : %d (%d index partitions "
                "invalidated)\n",
                m->update_batches, m->index_partitions_invalidated);
  }
  return 0;
}
