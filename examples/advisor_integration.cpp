// Index-advisor integration: the paper treats candidate generation as an
// orthogonal problem — "most index advisors can output a set of indexes
// that might be useful... This would be the input to our system" (§1).
// This example builds a dataflow with NO pre-attached candidates, lets the
// AccessPatternAdvisor annotate it from the operators' access patterns,
// and hands the result to the online tuner.
//
// Build & run:  cmake --build build && ./build/examples/advisor_integration

#include <cstdio>

#include "core/advisor.h"
#include "core/service.h"

using namespace dfim;

int main() {
  Catalog catalog;
  FileDatabaseOptions fdo;
  fdo.montage_files = 4;
  fdo.ligo_files = 4;
  fdo.cybershake_files = 4;
  FileDatabase db(&catalog, fdo);
  if (!db.Populate().ok()) return 1;

  DataflowGenerator generator(&db, 2077);
  Dataflow df = generator.Generate(AppType::kCybershake, 0, 0);

  // Strip the generator's built-in candidates: the advisor is the only
  // source of recommendations here.
  df.candidate_indexes.clear();
  df.index_speedup.clear();

  AccessPatternAdvisor advisor(&catalog);
  auto recs = advisor.Recommend(df);
  if (!recs.ok()) return 1;
  std::printf("Advisor analysed %zu operators over %zu tables and proposed "
              "%zu candidate indexes:\n",
              df.dag.num_ops(), df.input_tables.size(), recs->size());
  int shown = 0;
  for (const auto& r : *recs) {
    if (shown++ == 8) {
      std::printf("  ... (%zu more)\n", recs->size() - 8);
      break;
    }
    std::printf("  %-40s predicted speedup %7.2fx\n", r.def.id.c_str(),
                r.predicted_speedup);
  }

  if (!advisor.Annotate(&df, &catalog).ok()) return 1;

  // The tuner consumes the advisor's output exactly like generator-supplied
  // candidates: rank by gain, interleave builds into idle slots.
  TunerOptions topts;
  topts.sched.max_containers = 16;
  topts.sched.skyline_cap = 4;
  OnlineIndexTuner tuner(&catalog, topts);
  auto decision = tuner.OnDataflow(df, {}, 0);
  if (!decision.ok()) {
    std::printf("tuning failed: %s\n", decision.status().ToString().c_str());
    return 1;
  }
  int beneficial = 0;
  for (const auto& [idx, g] : decision->gains) {
    if (g.beneficial) ++beneficial;
  }
  std::printf("\nTuner evaluated %zu indexes: %d beneficial, %d build ops "
              "interleaved into the schedule (makespan %.1f s, %lld quanta, "
              "unchanged by the builds).\n",
              decision->gains.size(), beneficial,
              decision->build_ops_scheduled, decision->chosen.makespan(),
              static_cast<long long>(
                  decision->chosen.LeasedQuanta(topts.sched.quantum)));
  return 0;
}
